// Proxy equivalence tests: the forwarder must be invisible. The same
// deterministic workload driven through "vantaged proxy" over the text and
// the binary protocol must produce identical per-tenant results — the
// cluster-mode extension of the loadgen's TestBinaryMatchesText — and a
// proxied run must match a ring-aware client run, since both route every
// key to the same owner.
//
// Ring ownership hashes member addresses, so every compared run must see
// the cluster at the same addresses: the tests reserve ports once and
// rebind them for each fresh cluster.
package cluster_test

import (
	"io"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"vantage/internal/cluster"
	"vantage/internal/service"
	"vantage/internal/service/loadgen"
	"vantage/internal/workload"
)

// reservePorts binds and immediately releases n loopback listeners,
// returning their addresses for the compared clusters to rebind.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = lis.Addr().String()
		lis.Close()
	}
	return addrs
}

// listenAt rebinds addr, retrying briefly: the previous cluster's listener
// just closed and the port can take a beat to free.
func listenAt(t *testing.T, addr string) net.Listener {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		lis, err := net.Listen("tcp", addr)
		if err == nil {
			return lis
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// proxyCluster is one disposable cluster bound at fixed addresses, with an
// optional proxy in front. Close tears the whole thing down so the next
// cluster can rebind the same ports.
type proxyCluster struct {
	proxyAddr string
	closers   []func()
	closed    bool
}

// Close is idempotent: tests close explicitly to free the ports for the
// next cluster, and t.Cleanup closes again as a failure backstop.
func (pc *proxyCluster) Close() {
	if pc.closed {
		return
	}
	pc.closed = true
	for i := len(pc.closers) - 1; i >= 0; i-- {
		pc.closers[i]()
	}
}

// bootProxyCluster starts a 3-node cluster at the given addresses (fixed
// geometry: every compared run must start from an identical cluster or the
// comparison is meaningless) and, when withProxy is set, a Proxy in front.
func bootProxyCluster(t *testing.T, addrs []string, withProxy bool) *proxyCluster {
	t.Helper()
	pc := &proxyCluster{}
	for i, addr := range addrs {
		svc, err := service.New(service.Config{
			Shards:        2,
			LinesPerShard: 1024,
			MaxTenants:    4,
			Seed:          2011 + uint64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := service.ServeWith(svc, listenAt(t, addr), service.ServerConfig{})
		nd, err := cluster.NewNode(svc, addr, addrs, scaleVNodes)
		if err != nil {
			t.Fatal(err)
		}
		svc.SetClusterHandler(nd)
		pc.closers = append(pc.closers, func() { svc.Close() }, func() { srv.Close() })
	}
	if withProxy {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		p, err := cluster.NewProxy(lis, addrs, scaleVNodes)
		if err != nil {
			t.Fatal(err)
		}
		pc.proxyAddr = p.Addr().String()
		pc.closers = append(pc.closers, p.Close)
	}
	t.Cleanup(pc.Close)
	return pc
}

func proxyTenants() []loadgen.Tenant {
	return []loadgen.Tenant{{
		Name:  "t",
		Conns: 1,
		MakeApp: func(conn int) workload.App {
			return loadgen.CategoryApp(workload.Friendly, 2048, 7)
		},
	}}
}

// readUntilEnd reads relay lines until END (or a lone ERR line, which is
// a complete response on its own).
func readUntilEnd(t *testing.T, tc *textConn) []string {
	t.Helper()
	var lines []string
	for {
		raw, err := tc.r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line := strings.TrimRight(raw, "\r\n")
		lines = append(lines, line)
		if line == "END" || strings.HasPrefix(line, "ERR") {
			return lines
		}
	}
}

// TestProxyTextAdmin drives the proxy's text front through the verbs the
// loadgen never issues: multi-line relays (TENANT LIST, STATS), local
// answers (PING, QUIT, CLUSTER refusal, unknown verbs), and the malformed
// lines that must be forwarded for the backend's own usage errors while
// keeping the client stream in sync.
func TestProxyTextAdmin(t *testing.T) {
	addrs := reservePorts(t, 3)
	pc := bootProxyCluster(t, addrs, true)
	tc := dialScale(t, pc.proxyAddr)

	if resp := tc.roundTrip("TENANT ADD padmin"); !strings.HasPrefix(resp, "OK ") {
		t.Fatalf("TENANT ADD: %q", resp)
	}
	tc.w.WriteString("TENANT LIST\r\n")
	if err := tc.w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := readUntilEnd(t, tc)
	found := false
	for _, l := range lines {
		if strings.HasPrefix(l, "TENANT padmin ") {
			found = true
		}
	}
	if !found || lines[len(lines)-1] != "END" {
		t.Fatalf("TENANT LIST relay: %q", lines)
	}

	tc.w.WriteString("STATS\r\n")
	if err := tc.w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines = readUntilEnd(t, tc)
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "STAT ") || lines[len(lines)-1] != "END" {
		t.Fatalf("STATS relay: %q", lines)
	}

	tc.put("padmin", "k", "hello", -1)
	if v, hit := tc.get("padmin", "k"); !hit || v != "hello" {
		t.Fatalf("GET after PUT: %q %v", v, hit)
	}
	if resp := tc.roundTrip("TOUCH padmin k 1000"); resp != "TOUCHED" {
		t.Fatalf("TOUCH: %q", resp)
	}
	if resp := tc.roundTrip("DEL padmin k"); resp != "DELETED" {
		t.Fatalf("DEL: %q", resp)
	}

	if resp := tc.roundTrip("PING"); resp != "PONG" {
		t.Fatalf("PING: %q", resp)
	}
	if resp := tc.roundTrip("CLUSTER INFO"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("CLUSTER through proxy: %q", resp)
	}
	if resp := tc.roundTrip("FROB x y"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("unknown verb: %q", resp)
	}

	// Malformed lines forward to a backend for its usage error, and the
	// connection stays usable afterward.
	if resp := tc.roundTrip("GET padmin"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("short GET: %q", resp)
	}
	if resp := tc.roundTrip("PUT padmin k"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("short PUT: %q", resp)
	}
	if resp := tc.roundTrip("PUT padmin k notanumber"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("bad PUT length: %q", resp)
	}
	if resp := tc.roundTrip("MGET padmin"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("short MGET: %q", resp)
	}
	if resp := tc.roundTrip("MGET padmin two a"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("bad MGET count: %q", resp)
	}

	// MGET to an unknown tenant aborts with a single ERR, no END.
	tc.put("padmin", "a", "1", -1)
	tc.w.WriteString("MGET ghost 2 a b\r\n")
	if err := tc.w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines = readUntilEnd(t, tc)
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "ERR") {
		t.Fatalf("MGET unknown tenant: %q", lines)
	}

	// A real MGET reassembles per-key responses in key order.
	tc.put("padmin", "b", "22", -1)
	tc.w.WriteString("MGET padmin 3 a missing b\r\n")
	if err := tc.w.Flush(); err != nil {
		t.Fatal(err)
	}
	var got []string
	for i := 0; i < 3; i++ {
		raw, err := tc.r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line := strings.TrimRight(raw, "\r\n")
		if strings.HasPrefix(line, "VALUE ") {
			n, err := strconv.Atoi(strings.TrimPrefix(line, "VALUE "))
			if err != nil {
				t.Fatalf("MGET value line: %q", line)
			}
			body := make([]byte, n+2)
			if _, err := io.ReadFull(tc.r, body); err != nil {
				t.Fatal(err)
			}
			got = append(got, string(body[:n]))
		} else {
			got = append(got, line)
		}
	}
	if end, err := tc.r.ReadString('\n'); err != nil || strings.TrimRight(end, "\r\n") != "END" {
		t.Fatalf("MGET terminator: %q %v", end, err)
	}
	if got[0] != "1" || got[1] != "MISS" || got[2] != "22" {
		t.Fatalf("MGET reassembly: %q", got)
	}

	if resp := tc.roundTrip("TENANT DEL padmin"); resp != "OK" {
		t.Fatalf("TENANT DEL: %q", resp)
	}
	if resp := tc.roundTrip("QUIT"); resp != "BYE" {
		t.Fatalf("QUIT: %q", resp)
	}
}

// TestNodeAccessorsAndBootstrap covers the node's read surface and the
// restart catch-up path: a node that missed registrations pulls a peer's
// snapshot wholesale.
func TestNodeAccessorsAndBootstrap(t *testing.T) {
	nodes := startScaleCluster(t, 2, service.Config{
		Shards: 1, LinesPerShard: 512, MaxTenants: 8, Seed: 21,
	}, service.ServerConfig{})
	a, b := nodes[0], nodes[1]

	if a.node.Self() != a.addr {
		t.Fatalf("Self: %q != %q", a.node.Self(), a.addr)
	}
	if got := a.node.Members(); len(got) != 2 {
		t.Fatalf("Members: %v", got)
	}
	if !a.node.Ring().Contains(b.addr) {
		t.Fatal("ring missing peer")
	}
	if a.node.Peers() != 1 {
		t.Fatalf("Peers: %d", a.node.Peers())
	}

	p := cluster.NewPeer(a.addr)
	defer p.Close()
	if p.Addr() != a.addr {
		t.Fatalf("Addr: %q", p.Addr())
	}
	if err := p.Ping(); err != nil {
		t.Fatal(err)
	}

	// Register on A, then wipe B's knowledge by bootstrapping it from A:
	// SyncRegistry adopts the snapshot, so B ends with the same registry
	// and version.
	if _, err := a.svc.AddTenant("boot1"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.svc.AddTenant("boot2"); err != nil {
		t.Fatal(err)
	}
	if err := a.svc.RemoveTenant("boot2"); err != nil {
		t.Fatal(err)
	}
	if err := b.node.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	if got, want := b.svc.ClusterVersion(), a.svc.ClusterVersion(); got != want {
		t.Fatalf("version after bootstrap: %d != %d", got, want)
	}
	names := b.svc.TenantNames()
	if len(names) != 1 || names[0] != "boot1" {
		t.Fatalf("tenants after bootstrap: %v", names)
	}
}

// TestProxyBinaryMatchesText runs the identical single-connection
// deterministic workload through the proxy over the text and the binary
// front against fresh same-address clusters and requires identical
// per-tenant results. batch=8 additionally exercises MGET
// splitting/reassembly on the text front and pipelined frame forwarding on
// the binary one.
func TestProxyBinaryMatchesText(t *testing.T) {
	addrs := reservePorts(t, 3)
	for _, batch := range []int{1, 8} {
		run := func(bin, bmget bool) loadgen.Result {
			pc := bootProxyCluster(t, addrs, true)
			defer pc.Close()
			res, err := loadgen.Run(loadgen.Options{
				Addr:       pc.proxyAddr,
				Tenants:    proxyTenants(),
				OpsPerConn: 3000,
				ValueSize:  32,
				Batch:      batch,
				Binary:     bin,
				BMGet:      bmget,
			})
			if err != nil {
				t.Fatalf("batch=%d binary=%v bmget=%v: %v", batch, bin, bmget, err)
			}
			return res
		}
		text, bin := run(false, false), run(true, false)
		tt, bt := text.Tenants[0], bin.Tenants[0]
		if tt.Gets != bt.Gets || tt.Hits != bt.Hits || tt.Misses != bt.Misses || tt.Puts != bt.Puts {
			t.Fatalf("batch=%d: proxied text %+v != proxied binary %+v", batch, tt, bt)
		}
		if bt.Gets != 3000 {
			t.Fatalf("batch=%d: binary did %d gets, want full 3000 budget", batch, bt.Gets)
		}
		if bt.Hits == 0 || bt.Puts == 0 {
			t.Fatalf("batch=%d: degenerate proxied run %+v", batch, bt)
		}
		if batch > 1 {
			// BMGET coalesces the batch into one frame; the proxy splits it
			// per owner and re-merges, so the outcomes must still match the
			// text MGET run key for key.
			mt := run(false, true).Tenants[0]
			if tt.Gets != mt.Gets || tt.Hits != mt.Hits || tt.Misses != mt.Misses || tt.Puts != mt.Puts {
				t.Fatalf("batch=%d: proxied text %+v != proxied BMGET %+v", batch, tt, mt)
			}
		}
	}
}

// TestProxyConcurrentHandshakes races multiple connections per tenant
// through the proxy: every connection opens with TENANT ADD, so a second
// connection's add is idempotent on the owner while the first's broadcast
// may still be in flight — the idempotent path must wait for the announce,
// or the loser's first MGET reaches a peer that does not know the tenant
// yet. Regression test for exactly that race.
func TestProxyConcurrentHandshakes(t *testing.T) {
	addrs := reservePorts(t, 3)
	pc := bootProxyCluster(t, addrs, true)
	tenants := []loadgen.Tenant{
		{Name: "alpha", Conns: 2, MakeApp: func(conn int) workload.App {
			return loadgen.CategoryApp(workload.Friendly, 2048, uint64(10+conn))
		}},
		{Name: "beta", Conns: 2, MakeApp: func(conn int) workload.App {
			return loadgen.CategoryApp(workload.Friendly, 2048, uint64(20+conn))
		}},
	}
	res, err := loadgen.Run(loadgen.Options{
		Addr:       pc.proxyAddr,
		Tenants:    tenants,
		OpsPerConn: 1000,
		ValueSize:  32,
		Batch:      8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Tenants {
		if tr.Gets == 0 {
			t.Fatalf("tenant %s did no gets: %+v", tr.Name, tr)
		}
	}
}

// TestProxyMatchesRingClient compares a proxied text run against a
// ring-aware client run over fresh same-address clusters: both must route
// every key to the same owner, so the cache outcomes are identical.
func TestProxyMatchesRingClient(t *testing.T) {
	addrs := reservePorts(t, 3)

	pc := bootProxyCluster(t, addrs, true)
	viaProxy, err := loadgen.Run(loadgen.Options{
		Addr:       pc.proxyAddr,
		Tenants:    proxyTenants(),
		OpsPerConn: 3000,
		ValueSize:  32,
	})
	if err != nil {
		t.Fatal(err)
	}
	pc.Close()

	bootProxyCluster(t, addrs, false)
	viaRing, err := loadgen.Run(loadgen.Options{
		ClusterAddrs: addrs,
		VNodes:       scaleVNodes,
		Tenants:      proxyTenants(),
		OpsPerConn:   3000,
		ValueSize:    32,
	})
	if err != nil {
		t.Fatal(err)
	}
	pt, rt := viaProxy.Tenants[0], viaRing.Tenants[0]
	if pt.Gets != rt.Gets || pt.Hits != rt.Hits || pt.Misses != rt.Misses || pt.Puts != rt.Puts {
		t.Fatalf("proxied %+v != ring-routed %+v", pt, rt)
	}
	if pt.Hits == 0 {
		t.Fatalf("degenerate run %+v", pt)
	}
}
