package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// Service is the surface a Node drives on its local cache service,
// satisfied by *service.Service. An interface rather than the concrete
// type so this package depends only on the wire contract — which also
// lets the loadgen's ring-aware client import the ring without a cycle
// (service's own tests exercise the loadgen).
type Service interface {
	// SyncRegistry adopts a peer's registry snapshot (Bootstrap).
	SyncRegistry(version uint64, names []string) error
	// Export visits every live entry with its remaining TTL in ms (-1 =
	// never expires); returning false stops the walk.
	Export(visit func(tenant, key string, val []byte, ttlMS int64) bool)
	// Delete removes one key after its new owner acknowledged it.
	Delete(tenant, key string) (bool, error)
	// AddRehomedOut feeds the cluster_rehomed_keys counter.
	AddRehomedOut(n uint64)
}

// Node wires one Service into a cluster: it implements
// service.ClusterHandler, broadcasting the node's origin registry
// mutations to every peer, and owns the membership ring that drives key
// re-homing on join/leave. Install with svc.SetClusterHandler(node).
//
// The replication is gossip-free by design: membership is a static list
// every node is started with (the operator's deployment is the source of
// truth, as in the paper's fixed bank organization), registry ops fan out
// synchronously from their origin, and a (re)starting node catches up by
// pulling a peer's snapshot (Bootstrap). Two operators mutating the same
// tenant on different origins concurrently is the operator's race — each
// origin's ops apply in its own TCP order on every peer, and versions
// max-merge, so peers converge; which mutation "wins" is whichever lands
// last, exactly like issuing the two ops against one node back to back.
type Node struct {
	svc    Service
	self   string
	vnodes int

	// mu guards ring and peers. Never held across network I/O: broadcast
	// and drain snapshot what they need under mu and release it, so a slow
	// peer cannot stall registry reads or another broadcast's snapshot.
	mu    sync.Mutex
	ring  *Ring
	peers map[string]*Peer // every member but self

	// drainMu serializes membership changes: a drain is a long network
	// operation and two concurrent SetMembers would double-send keys.
	drainMu sync.Mutex
}

// NewNode builds the node's cluster view. self must be one of members —
// the address peers and clients route this node's keys to.
func NewNode(svc Service, self string, members []string, vnodes int) (*Node, error) {
	ring, err := NewRing(members, vnodes)
	if err != nil {
		return nil, err
	}
	if !ring.Contains(self) {
		return nil, fmt.Errorf("cluster: self %q not in member list %v", self, ring.Members())
	}
	n := &Node{svc: svc, self: self, vnodes: ring.VNodes(), ring: ring, peers: make(map[string]*Peer)}
	for _, m := range ring.Members() {
		if m != self {
			n.peers[m] = NewPeer(m)
		}
	}
	return n, nil
}

// Self returns this node's advertised address.
func (n *Node) Self() string { return n.self }

// Peers returns the current peer count (members minus self).
func (n *Node) Peers() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.peers)
}

// Members returns the current member set, sorted.
func (n *Node) Members() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, len(n.ring.Members()))
	copy(out, n.ring.Members())
	return out
}

// Ring returns the current ring (immutable; replaced wholesale by
// SetMembers).
func (n *Node) Ring() *Ring {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ring
}

// peerList snapshots the peers for iteration outside the lock.
func (n *Node) peerList() []*Peer {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Peer, 0, len(n.peers))
	for _, p := range n.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].addr < out[j].addr })
	return out
}

// AnnounceAdd replicates a tenant add to every peer (ClusterHandler).
// Best-effort and synchronous: by the time the origin's AddTenant returns,
// every reachable peer has the tenant, so a follow-up op routed anywhere
// succeeds. A peer that is down misses the op and catches up wholesale
// when it restarts and Bootstraps.
func (n *Node) AnnounceAdd(version uint64, name string) { n.broadcast(version, true, name) }

// AnnounceRemove replicates a tenant removal to every peer.
func (n *Node) AnnounceRemove(version uint64, name string) { n.broadcast(version, false, name) }

func (n *Node) broadcast(version uint64, add bool, name string) {
	for _, p := range n.peerList() {
		// Errors are dropped deliberately: the peer client already closed
		// the connection for redial, and a down peer re-syncs via Bootstrap.
		_, _ = p.RegOp(version, add, name)
	}
}

// Bootstrap pulls the registry snapshot from the first reachable peer and
// adopts it. Call once after the node's server is listening; a single-node
// cluster (no peers) is a no-op.
func (n *Node) Bootstrap() error {
	peers := n.peerList()
	if len(peers) == 0 {
		return nil
	}
	var lastErr error
	for _, p := range peers {
		version, names, err := p.RegPull()
		if err != nil {
			lastErr = err
			continue
		}
		return n.svc.SyncRegistry(version, names)
	}
	return fmt.Errorf("cluster: bootstrap found no reachable peer: %w", lastErr)
}

// rehomeBatchSize bounds one pipelined REHOME batch: large enough to
// amortize the round trip, small enough that a failed batch re-sends
// little.
const rehomeBatchSize = 128

// SetMembers installs a new member set and drains every key this node no
// longer owns to its new owner, TTLs preserved, returning how many keys
// were drained (also added to the service's cluster_rehomed_keys counter).
//
// The ring swaps before the drain, so requests arriving mid-drain already
// route by the new ownership; a key still in flight simply misses on the
// new owner until its REHOME frame lands — a cache's contract allows that,
// and the drain deletes a key locally only after its new owner
// acknowledged it, so an acknowledged PUT can never be lost by a
// membership change. A set that omits self means this node is leaving: it
// keeps serving, owns nothing, and drains its whole store.
func (n *Node) SetMembers(members []string) (uint64, error) {
	n.drainMu.Lock()
	defer n.drainMu.Unlock()

	newRing, err := NewRing(members, n.vnodes)
	if err != nil {
		return 0, err
	}

	n.mu.Lock()
	n.ring = newRing
	for _, m := range newRing.Members() {
		if m != n.self && n.peers[m] == nil {
			n.peers[m] = NewPeer(m)
		}
	}
	var departed []*Peer
	current := make(map[string]bool, len(members))
	for _, m := range newRing.Members() {
		current[m] = true
	}
	for addr, p := range n.peers {
		if !current[addr] {
			departed = append(departed, p)
			delete(n.peers, addr)
		}
	}
	n.mu.Unlock()
	for _, p := range departed {
		p.Close()
	}

	// Drain: collect everything the new ring homes elsewhere, grouped by
	// new owner, then stream per owner in pipelined batches. Values alias
	// the store (immutable snapshots), so the collection holds no copies.
	byOwner := make(map[string][]RehomeEntry)
	n.svc.Export(func(tenant, key string, val []byte, ttlMS int64) bool {
		owner := newRing.Owner(tenant, key)
		if owner != n.self {
			byOwner[owner] = append(byOwner[owner], RehomeEntry{Tenant: tenant, Key: key, Val: val, TTLMS: ttlMS})
		}
		return true
	})

	var moved uint64
	var firstErr error
	for owner, entries := range byOwner {
		n.mu.Lock()
		p := n.peers[owner]
		n.mu.Unlock()
		if p == nil {
			// A concurrent SetMembers removed the owner between export and
			// send; its keys will re-home on the next membership change.
			continue
		}
		for len(entries) > 0 {
			batch := entries
			if len(batch) > rehomeBatchSize {
				batch = batch[:rehomeBatchSize]
			}
			entries = entries[len(batch):]
			acked, err := p.RehomeBatch(batch)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				break // keep this owner's remaining keys; they stay served here
			}
			for i, ok := range acked {
				if !ok {
					continue
				}
				n.svc.Delete(batch[i].Tenant, batch[i].Key)
				moved++
			}
		}
	}
	n.svc.AddRehomedOut(moved)
	return moved, firstErr
}
