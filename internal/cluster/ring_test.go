package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// sampleKeys returns n deterministic (tenant, key) pairs spread over a few
// tenants, the shape the scale suite routes.
func sampleKeys(n int) [][2]string {
	out := make([][2]string, n)
	for i := 0; i < n; i++ {
		out[i] = [2]string{
			fmt.Sprintf("tenant-%d", i%17),
			fmt.Sprintf("key-%d", i),
		}
	}
	return out
}

func TestRingCanonicalization(t *testing.T) {
	if _, err := NewRing(nil, 64); err == nil {
		t.Fatal("empty member set accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 64); err == nil {
		t.Fatal("empty member address accepted")
	}
	r, err := NewRing([]string{"b", "a", "b", "c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Members(); len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("members not sorted+deduped: %v", got)
	}
	if r.VNodes() != DefaultVNodes {
		t.Fatalf("vnodes = %d, want default %d", r.VNodes(), DefaultVNodes)
	}
	if !r.Contains("b") || r.Contains("d") {
		t.Fatal("Contains wrong")
	}
}

// TestRingOwnershipAgreement: every peer building the ring from its own
// (permuted) view of the member list must route all 10k sampled keys
// identically — the determinism the whole client-side-routing design
// depends on.
func TestRingOwnershipAgreement(t *testing.T) {
	members := []string{"10.0.0.1:7070", "10.0.0.2:7070", "10.0.0.3:7070", "10.0.0.4:7070", "10.0.0.5:7070"}
	keys := sampleKeys(10000)
	for _, vn := range []int{1, 16, 128} {
		vn := vn
		t.Run(fmt.Sprintf("vnodes=%d", vn), func(t *testing.T) {
			ref, err := NewRing(members, vn)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(vn)))
			for peer := 0; peer < 4; peer++ {
				perm := make([]string, len(members))
				copy(perm, members)
				rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
				r, err := NewRing(perm, vn)
				if err != nil {
					t.Fatal(err)
				}
				for _, k := range keys {
					if a, b := ref.Owner(k[0], k[1]), r.Owner(k[0], k[1]); a != b {
						t.Fatalf("peer %d disagrees on (%s,%s): %s vs %s", peer, k[0], k[1], a, b)
					}
				}
			}
		})
	}
}

// TestRingMonotoneRemoval: removing one member re-homes only the keys that
// member owned; every key owned by a survivor keeps its owner. This is the
// consistent-hashing property that bounds re-homing traffic on node leave.
func TestRingMonotoneRemoval(t *testing.T) {
	members := []string{"n1", "n2", "n3", "n4", "n5"}
	keys := sampleKeys(10000)
	for _, vn := range []int{1, 16, 128} {
		vn := vn
		t.Run(fmt.Sprintf("vnodes=%d", vn), func(t *testing.T) {
			full, err := NewRing(members, vn)
			if err != nil {
				t.Fatal(err)
			}
			for _, leaving := range members {
				reduced := make([]string, 0, len(members)-1)
				for _, m := range members {
					if m != leaving {
						reduced = append(reduced, m)
					}
				}
				sub, err := NewRing(reduced, vn)
				if err != nil {
					t.Fatal(err)
				}
				moved := 0
				for _, k := range keys {
					before := full.Owner(k[0], k[1])
					after := sub.Owner(k[0], k[1])
					if before == leaving {
						moved++
						if after == leaving {
							t.Fatalf("(%s,%s) still owned by removed member %s", k[0], k[1], leaving)
						}
						continue
					}
					if after != before {
						t.Fatalf("(%s,%s) moved %s -> %s though %s left", k[0], k[1], before, after, leaving)
					}
				}
				// The departing member must actually have owned something at
				// realistic vnode counts, or the property test is vacuous.
				if vn >= 16 && moved == 0 {
					t.Fatalf("member %s owned none of %d keys at vnodes=%d", leaving, len(keys), vn)
				}
			}
		})
	}
}

// TestRingBalance sanity-checks that virtual nodes spread load: at 128
// vnodes no member of a 5-node ring should own more than 2x its fair share
// of 10k keys.
func TestRingBalance(t *testing.T) {
	members := []string{"n1", "n2", "n3", "n4", "n5"}
	r, err := NewRing(members, 128)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := sampleKeys(10000)
	for _, k := range keys {
		counts[r.Owner(k[0], k[1])]++
	}
	fair := len(keys) / len(members)
	for m, c := range counts {
		if c > 2*fair {
			t.Fatalf("member %s owns %d of %d keys (fair %d)", m, c, len(keys), fair)
		}
	}
}

// TestRingOwnerB: the byte-slice fast path must agree with Owner.
func TestRingOwnerB(t *testing.T) {
	r, err := NewRing([]string{"n1", "n2", "n3"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range sampleKeys(1000) {
		if r.Owner(k[0], k[1]) != r.OwnerB([]byte(k[0]), []byte(k[1])) {
			t.Fatalf("OwnerB disagrees on (%s,%s)", k[0], k[1])
		}
	}
}

// TestRingSeparatorUnambiguous: the NUL separator means ("ab","c") and
// ("a","bc") hash differently even though their concatenations collide.
func TestRingSeparatorUnambiguous(t *testing.T) {
	if KeyHash("ab", "c") == KeyHash("a", "bc") {
		t.Fatal("tenant/key boundary ambiguous")
	}
}
