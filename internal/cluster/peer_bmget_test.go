// Direct Peer.BMGet coverage (the proxy exercises the same frames, but
// through its own pool, not the Peer client), plus the text PUT fallback
// paths: malformed and un-poolable PUTs must forward with their value
// block consumed so the client stream never desyncs, and a length beyond
// the proxy's hard cap must kill the session with a proxy ERR.
package cluster_test

import (
	"io"
	"strings"
	"testing"

	"vantage/internal/cluster"
)

func TestPeerBMGet(t *testing.T) {
	addrs := reservePorts(t, 1)
	pn := &poolNode{addr: addrs[0]}
	pn.start(t, addrs)
	t.Cleanup(pn.stop)
	if _, err := pn.svc.AddTenant("t"); err != nil {
		t.Fatal(err)
	}
	if err := pn.svc.Put("t", "a", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := pn.svc.Put("t", "b", []byte("beta")); err != nil {
		t.Fatal(err)
	}

	peer := cluster.NewPeer(addrs[0])
	t.Cleanup(peer.Close)

	// Empty batch short-circuits without touching the wire.
	if entries, err := peer.BMGet("t", nil); err != nil || entries != nil {
		t.Fatalf("empty batch: %v, %v", entries, err)
	}

	entries, err := peer.BMGet("t", []string{"a", "nosuch", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("got %d entries, want 3", len(entries))
	}
	if !entries[0].Hit || string(entries[0].Val) != "alpha" {
		t.Fatalf("entry 0: %+v", entries[0])
	}
	if entries[1].Hit || entries[1].Shed {
		t.Fatalf("entry 1 should be a miss: %+v", entries[1])
	}
	if !entries[2].Hit || string(entries[2].Val) != "beta" {
		t.Fatalf("entry 2: %+v", entries[2])
	}

	// A frame-level ERR (unknown tenant) fails the whole call...
	if _, err := peer.BMGet("ghost", []string{"a"}); err == nil ||
		!strings.Contains(err.Error(), "rejected bmget") {
		t.Fatalf("unknown tenant: %v", err)
	}
	// ...without poisoning the connection for the next batch.
	entries, err = peer.BMGet("t", []string{"b"})
	if err != nil || len(entries) != 1 || !entries[0].Hit {
		t.Fatalf("after rejected batch: %v, %v", entries, err)
	}
}

func TestProxyTextPutFallback(t *testing.T) {
	_, p := bootPoolCluster(t, cluster.ProxyConfig{})
	tc := dialScale(t, p.Addr().String())
	if resp := tc.roundTrip("TENANT ADD fb"); !strings.HasPrefix(resp, "OK") {
		t.Fatalf("TENANT ADD: %q", resp)
	}

	// Too few fields and an unparseable length both forward line-only (no
	// value block can follow) and relay the backend's ERR.
	if resp := tc.roundTrip("PUT fb"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("short PUT: %q", resp)
	}
	if resp := tc.roundTrip("PUT fb k notanumber"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("bad length PUT: %q", resp)
	}

	// An oversized key cannot ride the pool; the fallback must consume the
	// value block before relaying the backend's ERR, or the next command
	// would be parsed out of the stale bytes.
	long := strings.Repeat("k", 251)
	tc.w.WriteString("PUT fb " + long + " 3\r\nabc\r\n")
	if err := tc.w.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, err := tc.r.ReadString('\n')
	if err != nil || !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("long key PUT: %q, %v", resp, err)
	}
	if resp := tc.roundTrip("PING"); resp != "PONG" {
		t.Fatalf("stream desynced after long-key PUT: %q", resp)
	}

	// Same path with a bare-LF value terminator, which the fallback must
	// tolerate the way the nodes do.
	tc.w.WriteString("PUT fb " + long + " 3\r\nxyz\n")
	if err := tc.w.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, err = tc.r.ReadString('\n')
	if err != nil || !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("bare-LF PUT: %q, %v", resp, err)
	}
	if resp := tc.roundTrip("PING"); resp != "PONG" {
		t.Fatalf("stream desynced after bare-LF PUT: %q", resp)
	}

	// A value above the pool ceiling but under the proxy cap still
	// forwards whole; the backend rejects it as too large.
	big := strings.Repeat("v", (1<<20)+1)
	tc.w.WriteString("PUT fb bigkey " + itoa(len(big)) + "\r\n" + big + "\r\n")
	if err := tc.w.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, err = tc.r.ReadString('\n')
	if err != nil || !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("oversized value PUT: %q, %v", resp, err)
	}
	if resp := tc.roundTrip("PING"); resp != "PONG" {
		t.Fatalf("stream desynced after oversized value PUT: %q", resp)
	}

	// A length beyond the proxy's own cap is fatal: the proxy answers with
	// its ERR and ends the session rather than buffer 64MB+.
	tc2 := dialScale(t, p.Addr().String())
	if resp := tc2.roundTrip("PUT fb k 67108865"); !strings.HasPrefix(resp, "ERR proxy:") {
		t.Fatalf("over-cap PUT: %q", resp)
	}
	if _, err := tc2.r.ReadString('\n'); err != io.EOF {
		t.Fatalf("session should close after fatal PUT, got %v", err)
	}
}
