package cache

import (
	"fmt"

	"vantage/internal/hash"
)

// ZCache implements the zcache array of Sanchez and Kozyrakis (MICRO 2010),
// the highly-associative design Vantage leverages (§3.2). A zcache with W
// ways indexes each way with a different H3 hash (like a skew-associative
// cache) and, on a replacement, walks the candidate tree: each first-level
// candidate line could also live at its positions in the other ways, whose
// current occupants become second-level candidates, and so on. Evicting a
// deep candidate relocates the lines along the path, so a W-way zcache
// provides R >> W replacement candidates while needing only W probes on a
// lookup.
//
// A skew-associative cache is the special case R == W (no expansion and no
// relocation); use NewSkew for that.
type ZCache struct {
	ways       int
	setsPerWay int
	wayShift   uint // log2(setsPerWay); wayOf is a shift
	lines      []Line
	hashes     []*hash.H3
	maxCands   int
	name       string
	moveHook   func(src, dst LineID)

	// slotTab caches, for every slot holding a valid line, that line's
	// position in each way: slotTab[id*ways+w] == slot(lines[id].Addr, w).
	// Rows are written when a line is installed (from the walk's first-level
	// probes) and copied when a line is relocated, so the BFS expansion of
	// the candidate walk reads a flat row instead of re-deriving Mix64 and
	// one H3 hash per non-home way for every expanded candidate. Rows of
	// invalid slots are stale and never read (invalid candidates are not
	// expanded).
	slotTab []LineID
	// rootSlots holds the current walk's first-level positions (the
	// installed line's future row).
	rootSlots []LineID
	// lk is a verified lookup memo: a direct-mapped table of recent
	// (address → slot) resolutions. A memo probe is trusted only after the
	// slot's line record confirms it still holds a valid line with the
	// probed address; since an address is resident in at most one slot
	// (installs happen only after a lookup miss and relocations move rather
	// than duplicate), a confirmed memo hit returns exactly what the
	// four-way probe would. Stale entries — relocated or replaced lines —
	// fail the confirmation and fall through to the full probe, so the memo
	// never changes a result, it only skips the per-way H3 hashes and
	// scattered line loads on temporally-local hits.
	lk []lkEntry

	// Candidate-walk scratch state, reused across calls.
	candSlots  []LineID
	candParent []int32
	visited    []uint32
	epoch      uint32
	lastAddr   uint64
	lastValid  bool
	pathBuf    []int32

	// Statistics.
	walks       uint64
	candsTotal  uint64
	installs    uint64
	relocations uint64
}

// lkEntry is one lookup-memo slot: an address and the slot it resolved to.
// The padded 16-byte record keeps a probe within one cache line.
type lkEntry struct {
	addr uint64
	id   LineID
	_    int32
}

// lookup-memo geometry: 4096 entries (64 KiB per array). The post-L1 stream
// has its short-range reuse filtered out, so the memo needs enough reach to
// catch medium-distance reuse; 64 KiB is small next to the line and metadata
// arrays the simulated cache already touches.
const (
	lkEntries = 4096
	lkMask    = lkEntries - 1
)

// NewZCache returns a zcache with numLines total line slots, the given way
// count, and up to maxCands replacement candidates per eviction. numLines
// must be a multiple of ways with a power-of-two number of slots per way.
// The per-way hash functions are seeded deterministically from seed.
//
// The paper's configurations are NewZCache(n, 4, 16, seed) ("Z4/16") and
// NewZCache(n, 4, 52, seed) ("Z4/52").
func NewZCache(numLines, ways, maxCands int, seed uint64) *ZCache {
	if ways < 2 {
		panic("cache: zcache needs at least 2 ways")
	}
	if numLines <= 0 || numLines%ways != 0 {
		panic(fmt.Sprintf("cache: invalid zcache geometry: %d lines, %d ways", numLines, ways))
	}
	spw := numLines / ways
	if spw&(spw-1) != 0 {
		panic(fmt.Sprintf("cache: zcache slots per way %d is not a power of two", spw))
	}
	if maxCands < ways {
		panic("cache: zcache maxCands must be at least the way count")
	}
	z := &ZCache{
		ways:       ways,
		setsPerWay: spw,
		wayShift:   uint(log2(spw)),
		lines:      make([]Line, numLines),
		hashes:     make([]*hash.H3, ways),
		maxCands:   maxCands,
		name:       fmt.Sprintf("Z%d/%d", ways, maxCands),
		visited:    make([]uint32, numLines),
		slotTab:    make([]LineID, numLines*ways),
		rootSlots:  make([]LineID, ways),
		lk:         make([]lkEntry, lkEntries),
	}
	for w := 0; w < ways; w++ {
		z.hashes[w] = hash.NewH3(log2(spw), hash.Mix64(seed+uint64(w)*0x9e37))
	}
	return z
}

// NewSkew returns a skew-associative array: a zcache restricted to its
// first-level candidates (R == ways) with no relocation.
func NewSkew(numLines, ways int, seed uint64) *ZCache {
	z := NewZCache(numLines, ways, ways, seed)
	z.name = fmt.Sprintf("Skew%d", ways)
	return z
}

// NumLines implements Array.
func (z *ZCache) NumLines() int { return len(z.lines) }

// Ways implements Array.
func (z *ZCache) Ways() int { return z.ways }

// Name implements Array.
func (z *ZCache) Name() string { return z.name }

// MaxCandidates returns R, the candidate budget per replacement.
func (z *ZCache) MaxCandidates() int { return z.maxCands }

// Line implements Array.
func (z *ZCache) Line(id LineID) *Line { return &z.lines[id] }

// Lines implements LinesAccessor.
func (z *ZCache) Lines() []Line { return z.lines }

// SetMoveHook implements Relocator.
func (z *ZCache) SetMoveHook(fn func(src, dst LineID)) { z.moveHook = fn }

// slot returns the LineID of addr's position in way w. The address is mixed
// before the H3 hash: H3 is XOR-linear in the key bits, so workloads that
// only exercise a few address bits would otherwise see only the subspace
// spanned by those bits' table rows (rank-deficient with noticeable
// probability); mixing spreads every address over all 64 key bits, matching
// hardware that hashes the full tag.
func (z *ZCache) slot(addr uint64, w int) LineID {
	return z.slotMixed(hash.Mix64(addr), w)
}

// slotMixed is slot with the Mix64 already applied, so callers probing all
// ways (Lookup, Candidates) mix the address once instead of once per way.
func (z *ZCache) slotMixed(mixed uint64, w int) LineID {
	return LineID(w*z.setsPerWay + int(z.hashes[w].Hash(mixed)))
}

// wayOf returns the way a slot belongs to (setsPerWay is a power of two).
func (z *ZCache) wayOf(id LineID) int { return int(id) >> z.wayShift }

// Lookup implements Array. A lookup probes one position per way.
func (z *ZCache) Lookup(addr uint64) (LineID, bool) {
	return z.LookupMixed(addr, hash.Mix64(addr))
}

// LookupMixed implements MixedArray. The verified memo is consulted first;
// a confirmed entry answers without hashing (see the lk field for why a
// confirmed hit is exactly the full probe's answer), and misses always run
// the full per-way probe.
func (z *ZCache) LookupMixed(addr, mixed uint64) (LineID, bool) {
	e := &z.lk[int(mixed)&lkMask]
	if e.addr == addr {
		if l := &z.lines[e.id]; l.Valid && l.Addr == addr {
			return e.id, true
		}
	}
	for w := 0; w < z.ways; w++ {
		id := z.slotMixed(mixed, w)
		l := &z.lines[id]
		if l.Valid && l.Addr == addr {
			e.addr, e.id = addr, id
			return id, true
		}
	}
	return InvalidLine, false
}

// Candidates implements Array. It performs the zcache replacement walk: a
// breadth-first expansion of the candidate tree rooted at addr's direct
// positions, capped at MaxCandidates. Invalid slots are included as
// candidates but not expanded.
func (z *ZCache) Candidates(addr uint64, buf []LineID) []LineID {
	return z.CandidatesMixed(addr, hash.Mix64(addr), buf)
}

// CandidatesMixed implements MixedArray.
func (z *ZCache) CandidatesMixed(addr, mixed uint64, buf []LineID) []LineID {
	z.epoch++
	if z.epoch == 0 { // wrapped: clear stamps
		for i := range z.visited {
			z.visited[i] = 0
		}
		z.epoch = 1
	}
	// The walk runs on locals (visited stamps, slot/parent lists) so the
	// compiler keeps them in registers instead of reloading struct fields
	// through the receiver on every push; the order of pushes — and hence
	// the candidate list — is exactly the closure-based version's.
	epoch := z.epoch
	visited := z.visited
	slots := z.candSlots[:0]
	parents := z.candParent[:0]
	maxCands := z.maxCands

	// The first-level probes double as the incoming line's slotTab row,
	// recorded before deduplication so the row is complete even when
	// positions collide (rootSlots is consumed by the following Install).
	for w := 0; w < z.ways; w++ {
		id := z.slotMixed(mixed, w)
		z.rootSlots[w] = id
		if visited[id] != epoch {
			visited[id] = epoch
			slots = append(slots, id)
			parents = append(parents, -1)
		}
		if len(slots) >= maxCands {
			break
		}
	}
	// BFS expansion: each valid candidate's line could also live at its
	// positions in the other ways, read from the line's precomputed slot row.
	ways := z.ways
	slotTab := z.slotTab
	for i := 0; i < len(slots) && len(slots) < maxCands; i++ {
		id := slots[i]
		if !z.lines[id].Valid {
			continue
		}
		home := int(id) >> z.wayShift
		row := slotTab[int(id)*ways : int(id)*ways+ways]
		for w := 0; w < ways && len(slots) < maxCands; w++ {
			if w == home {
				continue
			}
			cid := row[w]
			if visited[cid] != epoch {
				visited[cid] = epoch
				slots = append(slots, cid)
				parents = append(parents, int32(i))
			}
		}
	}
	z.candSlots, z.candParent = slots, parents

	z.lastAddr, z.lastValid = addr, true
	z.walks++
	z.candsTotal += uint64(len(slots))
	return append(buf, slots...)
}

// InstallMixed implements MixedArray: the zcache install is driven entirely
// by the candidate tree of the preceding Candidates call, so the mix is
// unused and Install and InstallMixed are the same operation.
func (z *ZCache) InstallMixed(addr, mixed uint64, victim LineID) (LineID, int) {
	id, moves := z.Install(addr, victim)
	// Prime the lookup memo: the installed line is where the next lookup of
	// addr will find it (unless relocated first, which the memo's line-record
	// confirmation handles).
	z.lk[int(mixed)&lkMask] = lkEntry{addr: addr, id: id}
	return id, moves
}

// Install implements Array. The victim must come from the immediately
// preceding Candidates(addr) call. If the victim is a deep candidate, the
// lines along the path from a direct position to the victim are relocated
// one step each (the move hook observes each move), the victim's line is
// evicted, and addr is installed at the freed direct position.
func (z *ZCache) Install(addr uint64, victim LineID) (LineID, int) {
	if !z.lastValid || z.lastAddr != addr {
		panic("cache: zcache Install without matching Candidates call")
	}
	z.lastValid = false
	vi := -1
	for i, id := range z.candSlots {
		if id == victim {
			vi = i
			break
		}
	}
	if vi < 0 {
		panic("cache: zcache Install victim was not a candidate")
	}
	// Build the path root..victim following parent links.
	path := z.pathBuf[:0]
	for i := int32(vi); i >= 0; i = z.candParent[i] {
		path = append(path, i)
	}
	z.pathBuf = path
	// path is victim..root; relocate from the deep end: the line at path[k+1]
	// (one step shallower) moves into the slot at path[k]. A relocated line
	// keeps its address, so its slot row moves with it (read before the next
	// iteration overwrites the source row).
	moves := 0
	ways := z.ways
	for k := 0; k+1 < len(path); k++ {
		dst := z.candSlots[path[k]]
		src := z.candSlots[path[k+1]]
		z.lines[dst] = z.lines[src]
		z.lines[src] = Line{}
		copy(z.slotTab[int(dst)*ways:int(dst)*ways+ways], z.slotTab[int(src)*ways:int(src)*ways+ways])
		if z.moveHook != nil {
			z.moveHook(src, dst)
		}
		moves++
	}
	root := z.candSlots[path[len(path)-1]]
	z.lines[root] = Line{Addr: addr, Valid: true}
	copy(z.slotTab[int(root)*ways:int(root)*ways+ways], z.rootSlots)
	z.installs++
	z.relocations += uint64(moves)
	return root, moves
}

// Stats reports the walk statistics the zcache paper characterizes: the
// average candidates obtained per walk (should approach MaxCandidates once
// warm) and the average line relocations per install (the energy cost of
// deep victims).
func (z *ZCache) Stats() (walks uint64, avgCands, avgRelocs float64) {
	walks = z.walks
	if z.walks > 0 {
		avgCands = float64(z.candsTotal) / float64(z.walks)
	}
	if z.installs > 0 {
		avgRelocs = float64(z.relocations) / float64(z.installs)
	}
	return
}

// Invalidate implements Array.
func (z *ZCache) Invalidate(id LineID) { z.lines[id] = Line{} }

var _ MixedArray = (*ZCache)(nil)
