package cache

import (
	"fmt"

	"vantage/internal/hash"
)

// RandomCands is the idealized "random candidates" array the paper uses to
// validate its analytical models (§6.2): a design that places a line in any
// slot and yields truly independent, uniformly distributed replacement
// candidates. It is unrealistic hardware (lookups need a full associative
// search, modeled here with a map) but it matches the uniformity assumption
// FA(x) = x^R exactly, so comparing it against zcaches shows how closely a
// practical array approximates the analysis.
type RandomCands struct {
	lines []Line
	index map[uint64]LineID
	r     int
	rng   *hash.Rand
	name  string
}

// NewRandomCands returns an idealized array with numLines slots yielding r
// uniformly distributed candidates per replacement.
func NewRandomCands(numLines, r int, seed uint64) *RandomCands {
	if numLines <= 0 || r <= 0 || r > numLines {
		panic(fmt.Sprintf("cache: invalid random-candidates geometry: %d lines, R=%d", numLines, r))
	}
	return &RandomCands{
		lines: make([]Line, numLines),
		index: make(map[uint64]LineID, numLines),
		r:     r,
		rng:   hash.NewRand(seed),
		name:  fmt.Sprintf("Rand/%d", r),
	}
}

// NumLines implements Array.
func (a *RandomCands) NumLines() int { return len(a.lines) }

// Ways implements Array. The design has no physical ways; report 1.
func (a *RandomCands) Ways() int { return 1 }

// Name implements Array.
func (a *RandomCands) Name() string { return a.name }

// Line implements Array.
func (a *RandomCands) Line(id LineID) *Line { return &a.lines[id] }

// Lines implements LinesAccessor.
func (a *RandomCands) Lines() []Line { return a.lines }

// Lookup implements Array.
func (a *RandomCands) Lookup(addr uint64) (LineID, bool) {
	id, ok := a.index[addr]
	return id, ok
}

// Candidates implements Array: r distinct uniformly random slots.
func (a *RandomCands) Candidates(addr uint64, buf []LineID) []LineID {
	_ = addr
	n := len(a.lines)
	if a.r*4 >= n {
		// Dense selection: partial Fisher-Yates over slot indices would need
		// extra state; for small arrays just reject duplicates via a bitmap.
		seen := make([]bool, n)
		for len(buf) < a.r {
			id := LineID(a.rng.Intn(n))
			if !seen[id] {
				seen[id] = true
				buf = append(buf, id)
			}
		}
		return buf
	}
	start := len(buf)
	for len(buf)-start < a.r {
		id := LineID(a.rng.Intn(n))
		dup := false
		for _, b := range buf[start:] {
			if b == id {
				dup = true
				break
			}
		}
		if !dup {
			buf = append(buf, id)
		}
	}
	return buf
}

// Install implements Array.
func (a *RandomCands) Install(addr uint64, victim LineID) (LineID, int) {
	old := &a.lines[victim]
	if old.Valid {
		delete(a.index, old.Addr)
	}
	a.lines[victim] = Line{Addr: addr, Valid: true}
	a.index[addr] = victim
	return victim, 0
}

// Invalidate implements Array.
func (a *RandomCands) Invalidate(id LineID) {
	if a.lines[id].Valid {
		delete(a.index, a.lines[id].Addr)
	}
	a.lines[id] = Line{}
}
