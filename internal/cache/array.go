// Package cache implements the cache array designs that Vantage builds on:
// set-associative arrays (with and without index hashing), skew-associative
// arrays, zcaches, and an idealized random-candidates array.
//
// An array implements associative lookups and, on each replacement, produces
// a list of replacement candidates (paper §3.2). The partitioning scheme and
// replacement policy decide which candidate to evict; the array then installs
// the incoming line, performing any relocations required by the design (only
// zcaches relocate).
//
// Lines are identified by dense LineID indices into a flat line store, so
// policies can keep per-line replacement state in parallel slices.
package cache

// LineID identifies a physical line slot in an array. IDs are dense in
// [0, NumLines()).
type LineID int32

// InvalidLine is returned by operations that find no line.
const InvalidLine LineID = -1

// Line is the tag-array state of one cache line slot. Replacement state
// (timestamps, RRPVs) is kept by the policy, and the partition ID by the
// partitioning scheme, both in parallel arrays indexed by LineID; Line holds
// only what every array needs.
type Line struct {
	Addr  uint64 // block (line) address; meaningful only when Valid
	Valid bool
}

// Array is the interface shared by all cache array designs.
//
// The access protocol is:
//
//	id, ok := a.Lookup(addr)        // hit if ok
//	cands := a.Candidates(addr, buf) // on a miss
//	... scheme picks victim v from cands ...
//	id = a.Install(addr, v)          // evicts v's line, installs addr
//
// Install must be called with a victim returned by the immediately preceding
// Candidates call for the same address: zcaches need the candidate tree built
// by Candidates to compute the relocation path.
type Array interface {
	// NumLines returns the total number of line slots.
	NumLines() int
	// Ways returns the number of ways (physical associativity).
	Ways() int
	// Line returns the tag state of slot id.
	Line(id LineID) *Line
	// Lookup returns the slot holding addr, if any.
	Lookup(addr uint64) (LineID, bool)
	// Candidates appends the replacement candidates for an incoming addr to
	// buf and returns it. Candidates include invalid (empty) slots.
	Candidates(addr uint64, buf []LineID) []LineID
	// Install evicts the line in victim (which must come from the preceding
	// Candidates(addr) call) and installs addr. It returns the slot where
	// addr now resides, which differs from victim in relocating designs.
	// Relocated is the number of lines moved (always 0 except for zcaches).
	Install(addr uint64, victim LineID) (id LineID, relocated int)
	// Invalidate empties slot id.
	Invalidate(id LineID)
	// Name returns a short description, e.g. "SA16" or "Z4/52".
	Name() string
}

// LinesAccessor is implemented by arrays that can expose their backing line
// store as a flat slice. Controllers that scan many candidates per miss
// resolve it once at construction and index the slice directly, instead of
// paying an interface call to Line per candidate. The slice aliases the
// array's own storage (arrays never reallocate it), so a.Lines()[id] and
// a.Line(id) are always the same line.
type LinesAccessor interface {
	Lines() []Line
}

// MixedArray is implemented by arrays whose indexing consumes the address
// through the hash.Mix64 finalizer (hashed set-associative arrays and
// zcaches, which mix the address before their H3 hashes). Callers that route
// one address through several such structures — the simulator threads each
// post-L1 reference through the UMON feed, the L2 controller, and the array —
// compute the mix once and pass it down, instead of re-mixing in every layer.
// Mix64 is a pure function, so for mixed == hash.Mix64(addr) each method is
// bit-for-bit identical to its unmixed counterpart; unhashed arrays ignore
// mixed entirely.
type MixedArray interface {
	Array
	// LookupMixed is Lookup with the Mix64 of addr precomputed.
	LookupMixed(addr, mixed uint64) (LineID, bool)
	// CandidatesMixed is Candidates with the Mix64 of addr precomputed.
	CandidatesMixed(addr, mixed uint64, buf []LineID) []LineID
	// InstallMixed is Install with the Mix64 of addr precomputed.
	InstallMixed(addr, mixed uint64, victim LineID) (id LineID, relocated int)
}

// Relocator is implemented by arrays that move lines between slots during
// Install (zcaches). Policies and schemes that keep per-LineID state must
// observe moves to keep their state attached to the logical line.
type Relocator interface {
	// SetMoveHook registers fn to be called for every line move from slot
	// src to slot dst during Install. At call time the tag state has already
	// been copied; fn must move any per-line metadata from src to dst.
	SetMoveHook(fn func(src, dst LineID))
}

// ceilPow2 returns the smallest power of two >= n (n > 0).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// log2 returns the base-2 logarithm of a power of two.
func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
