package cache

import (
	"fmt"

	"vantage/internal/hash"
)

// SetAssoc is a conventional set-associative cache array. The set index is
// either the low-order address bits or an H3 hash of the address (the paper
// uses "simple H3 hashing" for all arrays in its evaluation, §6.1, since it
// improves performance in most cases).
//
// On a miss, the replacement candidates are exactly the ways of the indexed
// set.
type SetAssoc struct {
	sets  int
	ways  int
	lines []Line
	// tags mirrors the lines' addresses in a packed array so the lookup scan
	// touches 8 bytes per way instead of a whole Line record; a tag match is
	// confirmed against the line's Valid bit (invalidated slots keep a zero
	// tag, which can collide with address zero but never pass that check).
	tags []uint64
	// sig/sigCnt form an exact per-set presence filter over the resident
	// tags: bit 1<<(addr&63) of sig[set] is set iff sigCnt[set*64 + addr&63]
	// counts at least one valid line in the set whose address maps to that
	// bit. A clear bit proves the address is absent, so a lookup miss —
	// common at high associativity, where it would otherwise scan every
	// way's tag — answers from one word; a set bit falls through to the
	// exact tag scan, which returns the same first match as before.
	sig    []uint64
	sigCnt []uint8
	h      *hash.H3 // nil => low-bits indexing
	name   string
	setBuf []LineID
}

// NewSetAssoc returns a set-associative array with numLines total lines and
// the given number of ways. numLines must be a multiple of ways and the set
// count must be a power of two. If hashed, the set index uses an H3 hash
// seeded with seed; otherwise low-order address bits index the set.
func NewSetAssoc(numLines, ways int, hashed bool, seed uint64) *SetAssoc {
	if ways <= 0 || ways > 255 || numLines <= 0 || numLines%ways != 0 {
		// ways is capped at 255 so the presence filter's per-bit line counts
		// fit a byte (a set holds at most ways lines).
		panic(fmt.Sprintf("cache: invalid set-assoc geometry: %d lines, %d ways", numLines, ways))
	}
	sets := numLines / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d is not a power of two", sets))
	}
	a := &SetAssoc{
		sets:  sets,
		ways:  ways,
		lines:  make([]Line, numLines),
		tags:   make([]uint64, numLines),
		sig:    make([]uint64, sets),
		sigCnt: make([]uint8, sets*64),
		name:   fmt.Sprintf("SA%d", ways),
	}
	if hashed {
		a.h = hash.NewH3(log2(sets), seed)
	}
	return a
}

// Sets returns the number of sets.
func (a *SetAssoc) Sets() int { return a.sets }

// NumLines implements Array.
func (a *SetAssoc) NumLines() int { return len(a.lines) }

// Ways implements Array.
func (a *SetAssoc) Ways() int { return a.ways }

// Name implements Array.
func (a *SetAssoc) Name() string { return a.name }

// Line implements Array.
func (a *SetAssoc) Line(id LineID) *Line { return &a.lines[id] }

// Lines implements LinesAccessor.
func (a *SetAssoc) Lines() []Line { return a.lines }

// SetIndex returns the set an address maps to. Hashed arrays mix the
// address before the H3 hash so that workloads touching few address bits
// still spread over every set (see ZCache.slot for the rationale).
func (a *SetAssoc) SetIndex(addr uint64) int {
	if a.h != nil {
		return int(a.h.Hash(hash.Mix64(addr)))
	}
	return int(addr & uint64(a.sets-1))
}

// SetIndexMixed is SetIndex with the Mix64 of addr precomputed (see
// MixedArray); unhashed arrays ignore mixed and index by low address bits.
func (a *SetAssoc) SetIndexMixed(addr, mixed uint64) int {
	if a.h != nil {
		return int(a.h.Hash(mixed))
	}
	return int(addr & uint64(a.sets-1))
}

// SetOf returns the set that slot id belongs to.
func (a *SetAssoc) SetOf(id LineID) int { return int(id) / a.ways }

// WayOf returns the way that slot id occupies within its set.
func (a *SetAssoc) WayOf(id LineID) int { return int(id) % a.ways }

// SlotAt returns the LineID of (set, way).
func (a *SetAssoc) SlotAt(set, way int) LineID { return LineID(set*a.ways + way) }

// Lookup implements Array.
func (a *SetAssoc) Lookup(addr uint64) (LineID, bool) {
	return a.scanSet(a.SetIndex(addr), addr)
}

// LookupMixed implements MixedArray.
func (a *SetAssoc) LookupMixed(addr, mixed uint64) (LineID, bool) {
	return a.scanSet(a.SetIndexMixed(addr, mixed), addr)
}

// scanSet finds addr among set's ways, matching on the packed tag array
// first and confirming against the line's Valid bit. The first valid way
// holding addr wins, exactly as a scan over the Line records; the presence
// filter only short-circuits sets that provably do not hold addr.
func (a *SetAssoc) scanSet(set int, addr uint64) (LineID, bool) {
	if a.sig[set]&(1<<(addr&63)) == 0 {
		return InvalidLine, false
	}
	base := set * a.ways
	tags := a.tags[base : base+a.ways]
	for w := range tags {
		if tags[w] == addr && a.lines[base+w].Valid {
			return LineID(base + w), true
		}
	}
	return InvalidLine, false
}

// sigInsert records a valid line with address addr joining set.
func (a *SetAssoc) sigInsert(set int, addr uint64) {
	a.sigCnt[set<<6|int(addr&63)]++
	a.sig[set] |= 1 << (addr & 63)
}

// sigRemove records the valid line with address addr leaving set.
func (a *SetAssoc) sigRemove(set int, addr uint64) {
	i := set<<6 | int(addr&63)
	if a.sigCnt[i]--; a.sigCnt[i] == 0 {
		a.sig[set] &^= 1 << (addr & 63)
	}
}

// Candidates implements Array. The candidates are the ways of addr's set, in
// way order.
func (a *SetAssoc) Candidates(addr uint64, buf []LineID) []LineID {
	base := a.SetIndex(addr) * a.ways
	for w := 0; w < a.ways; w++ {
		buf = append(buf, LineID(base+w))
	}
	return buf
}

// CandidatesMixed implements MixedArray.
func (a *SetAssoc) CandidatesMixed(addr, mixed uint64, buf []LineID) []LineID {
	base := a.SetIndexMixed(addr, mixed) * a.ways
	for w := 0; w < a.ways; w++ {
		buf = append(buf, LineID(base+w))
	}
	return buf
}

// Install implements Array. The victim must belong to addr's set.
func (a *SetAssoc) Install(addr uint64, victim LineID) (LineID, int) {
	set := a.SetOf(victim)
	if set != a.SetIndex(addr) {
		panic("cache: set-assoc install victim outside the address's set")
	}
	a.install(set, addr, victim)
	return victim, 0
}

// InstallMixed implements MixedArray.
func (a *SetAssoc) InstallMixed(addr, mixed uint64, victim LineID) (LineID, int) {
	set := a.SetOf(victim)
	if set != a.SetIndexMixed(addr, mixed) {
		panic("cache: set-assoc install victim outside the address's set")
	}
	a.install(set, addr, victim)
	return victim, 0
}

// install overwrites victim with a valid line for addr, keeping the tag
// array and presence filter in sync.
func (a *SetAssoc) install(set int, addr uint64, victim LineID) {
	if l := &a.lines[victim]; l.Valid {
		a.sigRemove(set, l.Addr)
	}
	a.lines[victim] = Line{Addr: addr, Valid: true}
	a.tags[victim] = addr
	a.sigInsert(set, addr)
}

// Invalidate implements Array.
func (a *SetAssoc) Invalidate(id LineID) {
	if l := &a.lines[id]; l.Valid {
		a.sigRemove(a.SetOf(id), l.Addr)
	}
	a.lines[id] = Line{}
	a.tags[id] = 0
}

var _ MixedArray = (*SetAssoc)(nil)
