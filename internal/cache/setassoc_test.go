package cache

import (
	"testing"
	"testing/quick"
)

func TestNewSetAssocPanics(t *testing.T) {
	cases := []struct{ lines, ways int }{
		{0, 4}, {-8, 4}, {10, 4}, {16, 0}, {48, 16}, // 48/16=3 sets, not pow2
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSetAssoc(%d,%d) did not panic", c.lines, c.ways)
				}
			}()
			NewSetAssoc(c.lines, c.ways, false, 0)
		}()
	}
}

func TestSetAssocGeometry(t *testing.T) {
	a := NewSetAssoc(1024, 16, false, 0)
	if a.NumLines() != 1024 || a.Ways() != 16 || a.Sets() != 64 {
		t.Fatalf("geometry: lines=%d ways=%d sets=%d", a.NumLines(), a.Ways(), a.Sets())
	}
	if a.Name() != "SA16" {
		t.Fatalf("name = %q", a.Name())
	}
}

func TestSetAssocLowBitsIndex(t *testing.T) {
	a := NewSetAssoc(256, 4, false, 0) // 64 sets
	for addr := uint64(0); addr < 1000; addr++ {
		if got, want := a.SetIndex(addr), int(addr%64); got != want {
			t.Fatalf("SetIndex(%d) = %d, want %d", addr, got, want)
		}
	}
}

func TestSetAssocInstallLookup(t *testing.T) {
	a := NewSetAssoc(256, 4, true, 7)
	addr := uint64(0xdead00)
	if _, ok := a.Lookup(addr); ok {
		t.Fatal("lookup hit in empty cache")
	}
	cands := a.Candidates(addr, nil)
	if len(cands) != 4 {
		t.Fatalf("got %d candidates, want 4", len(cands))
	}
	id, moved := a.Install(addr, cands[2])
	if moved != 0 {
		t.Fatalf("set-assoc moved %d lines", moved)
	}
	if id != cands[2] {
		t.Fatalf("installed at %d, want %d", id, cands[2])
	}
	got, ok := a.Lookup(addr)
	if !ok || got != id {
		t.Fatalf("lookup after install: id=%d ok=%v", got, ok)
	}
	a.Invalidate(id)
	if _, ok := a.Lookup(addr); ok {
		t.Fatal("lookup hit after invalidate")
	}
}

func TestSetAssocCandidatesAreTheSet(t *testing.T) {
	a := NewSetAssoc(512, 8, true, 3)
	f := func(addr uint64) bool {
		cands := a.Candidates(addr, nil)
		if len(cands) != 8 {
			return false
		}
		set := a.SetIndex(addr)
		for w, id := range cands {
			if a.SetOf(id) != set || a.WayOf(id) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetAssocInstallWrongSetPanics(t *testing.T) {
	a := NewSetAssoc(256, 4, false, 0)
	addr := uint64(5) // set 5
	defer func() {
		if recover() == nil {
			t.Fatal("install outside the set did not panic")
		}
	}()
	a.Install(addr, a.SlotAt(6, 0))
}

func TestSetAssocSlotHelpers(t *testing.T) {
	a := NewSetAssoc(256, 4, false, 0)
	for set := 0; set < a.Sets(); set += 7 {
		for w := 0; w < 4; w++ {
			id := a.SlotAt(set, w)
			if a.SetOf(id) != set || a.WayOf(id) != w {
				t.Fatalf("slot round-trip failed at set=%d way=%d", set, w)
			}
		}
	}
}

func TestSetAssocFillWholeSet(t *testing.T) {
	a := NewSetAssoc(64, 4, false, 0) // 16 sets
	// Fill set 3 with 4 distinct addresses mapping to it.
	addrs := []uint64{3, 3 + 16, 3 + 32, 3 + 48}
	for i, addr := range addrs {
		cands := a.Candidates(addr, nil)
		// Pick the first invalid candidate.
		victim := InvalidLine
		for _, c := range cands {
			if !a.Line(c).Valid {
				victim = c
				break
			}
		}
		if victim == InvalidLine {
			t.Fatalf("no free slot at insert %d", i)
		}
		a.Install(addr, victim)
	}
	for _, addr := range addrs {
		if _, ok := a.Lookup(addr); !ok {
			t.Fatalf("addr %d missing after fill", addr)
		}
	}
	// A fifth address to the same set must evict exactly one.
	cands := a.Candidates(uint64(3+64), nil)
	evictAddr := a.Line(cands[0]).Addr
	a.Install(3+64, cands[0])
	if _, ok := a.Lookup(evictAddr); ok {
		t.Fatal("evicted address still present")
	}
	if _, ok := a.Lookup(3 + 64); !ok {
		t.Fatal("new address not present")
	}
}

func TestSetAssocHashedSpreadsConflicts(t *testing.T) {
	// Sequential strided addresses that all collide under low-bits indexing
	// should spread over many sets under H3 hashing.
	a := NewSetAssoc(1024, 4, true, 11) // 256 sets
	seen := map[int]bool{}
	for i := 0; i < 256; i++ {
		seen[a.SetIndex(uint64(i)<<8)] = true
	}
	if len(seen) < 128 {
		t.Fatalf("hashed index maps 256 strided addrs to only %d sets", len(seen))
	}
}
