package cache

import (
	"testing"

	"vantage/internal/hash"
)

func TestNewRandomCandsPanics(t *testing.T) {
	cases := []struct{ lines, r int }{{0, 4}, {16, 0}, {16, 17}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRandomCands(%d,%d) did not panic", c.lines, c.r)
				}
			}()
			NewRandomCands(c.lines, c.r, 1)
		}()
	}
}

func TestRandomCandsBasics(t *testing.T) {
	a := NewRandomCands(128, 16, 9)
	if a.Name() != "Rand/16" || a.NumLines() != 128 || a.Ways() != 1 {
		t.Fatalf("metadata wrong: %s %d %d", a.Name(), a.NumLines(), a.Ways())
	}
	cands := a.Candidates(1, nil)
	if len(cands) != 16 {
		t.Fatalf("got %d candidates, want 16", len(cands))
	}
	seen := map[LineID]bool{}
	for _, c := range cands {
		if seen[c] {
			t.Fatal("duplicate candidate")
		}
		seen[c] = true
	}
	id, moves := a.Install(1, cands[3])
	if moves != 0 || id != cands[3] {
		t.Fatalf("install: id=%d moves=%d", id, moves)
	}
	if got, ok := a.Lookup(1); !ok || got != id {
		t.Fatalf("lookup: %d %v", got, ok)
	}
}

func TestRandomCandsDenseSelection(t *testing.T) {
	// r*4 >= n path: r=8, n=16.
	a := NewRandomCands(16, 8, 9)
	for i := 0; i < 100; i++ {
		cands := a.Candidates(uint64(i), nil)
		if len(cands) != 8 {
			t.Fatalf("got %d candidates", len(cands))
		}
		seen := map[LineID]bool{}
		for _, c := range cands {
			if seen[c] {
				t.Fatal("duplicate candidate in dense path")
			}
			seen[c] = true
		}
	}
}

func TestRandomCandsEvictionRemovesFromIndex(t *testing.T) {
	a := NewRandomCands(64, 8, 9)
	rng := hash.NewRand(1)
	resident := map[uint64]LineID{}
	for i := 0; i < 2000; i++ {
		addr := rng.Uint64() | 1
		if _, ok := a.Lookup(addr); ok {
			continue
		}
		cands := a.Candidates(addr, nil)
		victim := cands[0]
		old := *a.Line(victim)
		id, _ := a.Install(addr, victim)
		if old.Valid {
			delete(resident, old.Addr)
			if _, ok := a.Lookup(old.Addr); ok {
				t.Fatal("evicted address still in index")
			}
		}
		resident[addr] = id
	}
	for addr, id := range resident {
		got, ok := a.Lookup(addr)
		if !ok || got != id {
			t.Fatalf("resident %#x lost (ok=%v id=%d want %d)", addr, ok, got, id)
		}
	}
}

func TestRandomCandsUniformCoverage(t *testing.T) {
	a := NewRandomCands(256, 16, 5)
	counts := make([]int, 256)
	for i := 0; i < 4000; i++ {
		for _, c := range a.Candidates(uint64(i), nil) {
			counts[c]++
		}
	}
	// 4000*16/256 = 250 expected per slot; all slots should be sampled.
	for id, c := range counts {
		if c == 0 {
			t.Fatalf("slot %d never sampled", id)
		}
		if c < 125 || c > 400 {
			t.Fatalf("slot %d sampled %d times, expected ~250", id, c)
		}
	}
}

func TestRandomCandsInvalidate(t *testing.T) {
	a := NewRandomCands(64, 8, 9)
	cands := a.Candidates(42, nil)
	id, _ := a.Install(42, cands[0])
	a.Invalidate(id)
	if _, ok := a.Lookup(42); ok {
		t.Fatal("lookup hit after invalidate")
	}
	a.Invalidate(id) // idempotent
}
