package cache

import (
	"testing"

	"vantage/internal/hash"
)

func TestNewZCachePanics(t *testing.T) {
	cases := []struct{ lines, ways, cands int }{
		{1024, 1, 16}, // too few ways
		{1023, 4, 16}, // not a multiple of ways
		{96, 4, 16},   // 24 slots/way, not pow2
		{1024, 4, 2},  // cands < ways
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZCache(%d,%d,%d) did not panic", c.lines, c.ways, c.cands)
				}
			}()
			NewZCache(c.lines, c.ways, c.cands, 1)
		}()
	}
}

func TestZCacheNames(t *testing.T) {
	if got := NewZCache(1024, 4, 52, 1).Name(); got != "Z4/52" {
		t.Fatalf("name = %q", got)
	}
	if got := NewSkew(1024, 4, 1).Name(); got != "Skew4" {
		t.Fatalf("skew name = %q", got)
	}
}

func TestZCacheLookupAfterInstall(t *testing.T) {
	z := NewZCache(512, 4, 16, 42)
	for addr := uint64(1); addr <= 100; addr++ {
		cands := z.Candidates(addr, nil)
		z.Install(addr, cands[0])
		if _, ok := z.Lookup(addr); !ok {
			t.Fatalf("addr %d not found after install", addr)
		}
	}
}

func TestZCacheCandidateCount(t *testing.T) {
	z := NewZCache(4096, 4, 52, 7)
	// Fill the cache so expansion can proceed.
	rng := hash.NewRand(1)
	for i := 0; i < 20000; i++ {
		addr := rng.Uint64() | 1
		if _, ok := z.Lookup(addr); ok {
			continue
		}
		cands := z.Candidates(addr, nil)
		z.Install(addr, cands[len(cands)-1])
	}
	// Once warm, walks should reach the full candidate budget nearly always.
	full := 0
	for i := 0; i < 1000; i++ {
		addr := rng.Uint64() | 1
		cands := z.Candidates(addr, nil)
		if len(cands) > 52 {
			t.Fatalf("got %d candidates, cap is 52", len(cands))
		}
		if len(cands) == 52 {
			full++
		}
	}
	if full < 950 {
		t.Fatalf("only %d/1000 walks reached 52 candidates", full)
	}
}

func TestZCacheCandidatesDistinct(t *testing.T) {
	z := NewZCache(1024, 4, 52, 3)
	rng := hash.NewRand(2)
	for i := 0; i < 5000; i++ {
		addr := rng.Uint64() | 1
		if _, ok := z.Lookup(addr); ok {
			continue
		}
		cands := z.Candidates(addr, nil)
		seen := map[LineID]bool{}
		for _, c := range cands {
			if seen[c] {
				t.Fatalf("duplicate candidate %d at iteration %d", c, i)
			}
			seen[c] = true
		}
		z.Install(addr, cands[rng.Intn(len(cands))])
	}
}

// TestZCacheRelocationPreservesLines is the key invariant test: installing
// with a deep victim relocates lines, and every line that was present before
// (except the victim) must still be findable by Lookup afterwards.
func TestZCacheRelocationPreservesLines(t *testing.T) {
	z := NewZCache(256, 4, 52, 9)
	rng := hash.NewRand(3)
	resident := map[uint64]bool{}
	for i := 0; i < 8000; i++ {
		addr := rng.Uint64() | 1
		if _, ok := z.Lookup(addr); ok {
			continue
		}
		cands := z.Candidates(addr, nil)
		victim := cands[rng.Intn(len(cands))]
		vLine := *z.Line(victim)
		z.Install(addr, victim)
		if vLine.Valid {
			delete(resident, vLine.Addr)
		}
		resident[addr] = true
	}
	if len(resident) == 0 {
		t.Fatal("no resident lines tracked")
	}
	for addr := range resident {
		if _, ok := z.Lookup(addr); !ok {
			t.Fatalf("resident line %#x lost after relocations", addr)
		}
	}
}

func TestZCacheMoveHookObservesAllMoves(t *testing.T) {
	z := NewZCache(256, 4, 52, 5)
	moves := 0
	z.SetMoveHook(func(src, dst LineID) {
		if src == dst {
			t.Fatal("move hook called with src == dst")
		}
		moves++
	})
	rng := hash.NewRand(4)
	reported := 0
	for i := 0; i < 4000; i++ {
		addr := rng.Uint64() | 1
		if _, ok := z.Lookup(addr); ok {
			continue
		}
		cands := z.Candidates(addr, nil)
		// Deliberately pick the deepest candidate to force relocations.
		_, n := z.Install(addr, cands[len(cands)-1])
		reported += n
	}
	if moves != reported {
		t.Fatalf("hook saw %d moves, Install reported %d", moves, reported)
	}
	if moves == 0 {
		t.Fatal("deep victims never caused relocations")
	}
}

func TestZCacheInstallWithoutCandidatesPanics(t *testing.T) {
	z := NewZCache(256, 4, 16, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("Install without Candidates did not panic")
		}
	}()
	z.Install(123, 0)
}

func TestZCacheInstallNonCandidatePanics(t *testing.T) {
	z := NewZCache(256, 4, 16, 5)
	cands := z.Candidates(77, nil)
	bad := LineID(0)
	for isCand := true; isCand; bad++ {
		isCand = false
		for _, c := range cands {
			if c == bad {
				isCand = true
				break
			}
		}
		if !isCand {
			break
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Install with non-candidate victim did not panic")
		}
	}()
	z.Install(77, bad)
}

func TestZCacheStaleInstallPanics(t *testing.T) {
	z := NewZCache(256, 4, 16, 5)
	cands := z.Candidates(77, nil)
	z.Candidates(78, nil) // newer walk invalidates the old one
	defer func() {
		if recover() == nil {
			t.Fatal("Install against stale Candidates did not panic")
		}
	}()
	z.Install(77, cands[0])
}

func TestSkewHasNoRelocations(t *testing.T) {
	z := NewSkew(256, 4, 8)
	rng := hash.NewRand(6)
	for i := 0; i < 2000; i++ {
		addr := rng.Uint64() | 1
		if _, ok := z.Lookup(addr); ok {
			continue
		}
		cands := z.Candidates(addr, nil)
		if len(cands) > 4 {
			t.Fatalf("skew cache returned %d candidates", len(cands))
		}
		_, moves := z.Install(addr, cands[rng.Intn(len(cands))])
		if moves != 0 {
			t.Fatalf("skew cache relocated %d lines", moves)
		}
	}
}

func TestZCacheInvalidate(t *testing.T) {
	z := NewZCache(256, 4, 16, 5)
	cands := z.Candidates(42, nil)
	id, _ := z.Install(42, cands[0])
	z.Invalidate(id)
	if _, ok := z.Lookup(42); ok {
		t.Fatal("lookup hit after invalidate")
	}
}

func TestZCacheEpochWrapStillDedups(t *testing.T) {
	z := NewZCache(64, 4, 16, 5)
	z.epoch = ^uint32(0) - 1
	for i := 0; i < 8; i++ {
		cands := z.Candidates(uint64(1000+i), nil)
		seen := map[LineID]bool{}
		for _, c := range cands {
			if seen[c] {
				t.Fatal("duplicate candidate after epoch wrap")
			}
			seen[c] = true
		}
	}
}

func TestZCacheStats(t *testing.T) {
	z := NewZCache(1024, 4, 52, 5)
	rng := hash.NewRand(9)
	for i := 0; i < 20000; i++ {
		addr := rng.Uint64() | 1
		if _, ok := z.Lookup(addr); ok {
			continue
		}
		cands := z.Candidates(addr, nil)
		// LRU-free random victim keeps relocations flowing.
		z.Install(addr, cands[rng.Intn(len(cands))])
	}
	walks, avgCands, avgRelocs := z.Stats()
	if walks == 0 {
		t.Fatal("no walks recorded")
	}
	if avgCands < 45 || avgCands > 52 {
		t.Fatalf("average candidates %v, want near 52 once warm", avgCands)
	}
	// Random victims land at depth >= 2 most of the time (48 of 52
	// candidates are deep), so relocations per install average above 1.
	if avgRelocs < 1 || avgRelocs > 2 {
		t.Fatalf("average relocations %v, want in [1,2]", avgRelocs)
	}
}
