package analytic_test

import (
	"fmt"

	"vantage/internal/analytic"
)

// The §3.4 worked example: four equally sized partitions where the first
// has twice the churn of the others, R = 16 candidates, m = 62.5% managed.
// The paper derives apertures of 16% and 8%.
func ExampleAperture() {
	cTot := 2.0 + 1 + 1 + 1
	sTot := 4.0
	fmt.Printf("A1 = %.0f%%\n", 100*analytic.Aperture(2, cTot, 1, sTot, 16, 0.625))
	fmt.Printf("A2 = %.0f%%\n", 100*analytic.Aperture(1, cTot, 1, sTot, 16, 0.625))
	// Output:
	// A1 = 16%
	// A2 = 8%
}

// The §3.2 quoted point: with R = 64 candidates, evicting a line with
// priority below 0.8 happens about once in a million evictions.
func ExampleAssocCDF() {
	fmt.Printf("%.1e\n", analytic.AssocCDF(0.8, 64))
	// Output:
	// 6.3e-07
}

// The §4.3 sizing rule at the paper's quoted points: a Z4/52 needs ~13%
// unmanaged for Pev = 1e-2 and ~21% for Pev = 1e-4.
func ExampleUnmanagedFraction() {
	fmt.Printf("%.1f%% %.1f%%\n",
		100*analytic.UnmanagedFraction(1e-2, 0.4, 0.1, 52),
		100*analytic.UnmanagedFraction(1e-4, 0.4, 0.1, 52))
	// Output:
	// 13.8% 21.5%
}

// Worst-case minimum stable size at the evaluation settings (§6.1): a
// saturated partition cannot be squeezed below ~3.8% of the cache.
func ExampleMinStableSize() {
	fmt.Printf("%.1f%%\n", 100*analytic.MinStableSize(1, 1, 1, 0.5, 52, 1))
	// Output:
	// 3.8%
}
