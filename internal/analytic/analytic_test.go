package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAssocCDFPaperValues(t *testing.T) {
	// §3.2: "with R = 64, the probability of evicting a line with eviction
	// priority e < 0.8 is FA(0.8) = 10^-6" (0.8^64 ≈ 6.3e-7, i.e. ~1e-6).
	if p := AssocCDF(0.8, 64); p > 1e-6 || p < 1e-7 {
		t.Fatalf("FA(0.8; R=64) = %g, want ~1e-6", p)
	}
	if p := AssocCDF(0.5, 4); !close(p, 0.0625, 1e-12) {
		t.Fatalf("FA(0.5; R=4) = %g, want 0.0625", p)
	}
}

func TestAssocCDFBounds(t *testing.T) {
	f := func(x float64, r uint8) bool {
		rr := int(r%64) + 1
		v := AssocCDF(x, rr)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if AssocCDF(-1, 8) != 0 || AssocCDF(2, 8) != 1 {
		t.Fatal("CDF clamping broken")
	}
}

func TestAssocCDFMonotonic(t *testing.T) {
	for r := 1; r <= 64; r *= 2 {
		prev := -1.0
		for x := 0.0; x <= 1.0; x += 0.01 {
			v := AssocCDF(x, r)
			if v < prev {
				t.Fatalf("CDF not monotone at x=%v r=%d", x, r)
			}
			prev = v
		}
	}
}

func TestAssocQuantileInverts(t *testing.T) {
	for _, r := range []int{4, 8, 16, 52, 64} {
		for p := 0.01; p < 1; p += 0.07 {
			x := AssocQuantile(p, r)
			if !close(AssocCDF(x, r), p, 1e-9) {
				t.Fatalf("quantile does not invert CDF at p=%v r=%d", p, r)
			}
		}
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120}, {52, 1, 52}, {4, 5, 0}, {4, -1, 0}}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Fatalf("C(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestManagedCDFOnePerEvictionIsACDF(t *testing.T) {
	for _, r := range []int{16, 32, 64} {
		if v := ManagedCDFOnePerEviction(1, r, 0.3); !close(v, 1, 1e-9) {
			t.Fatalf("FM(1) = %v, want 1", v)
		}
		if v := ManagedCDFOnePerEviction(0, r, 0.3); v != 0 {
			t.Fatalf("FM(0) = %v, want 0", v)
		}
		prev := -1.0
		for x := 0.0; x <= 1.0; x += 0.02 {
			v := ManagedCDFOnePerEviction(x, r, 0.3)
			if v < prev {
				t.Fatalf("FM not monotone at x=%v", x)
			}
			prev = v
		}
	}
}

func TestManagedDemoteOnAverageBeatsOnePerEviction(t *testing.T) {
	// Fig 2b vs 2c: demoting on the average concentrates demotions at high
	// priorities. At the aperture boundary the on-average CDF must be far
	// below the one-per-eviction CDF (fewer low-priority demotions).
	for _, r := range []int{16, 32, 64} {
		u := 0.3
		a := 1 / (float64(r) * (1 - u))
		x := 1 - a // bottom of the on-average demotion band
		avg := ManagedCDFOnAverage(x, r, u)
		one := ManagedCDFOnePerEviction(x, r, u)
		if avg != 0 {
			t.Fatalf("on-average CDF at band edge = %v, want 0", avg)
		}
		if one < 0.3 {
			t.Fatalf("R=%d: one-per-eviction CDF at %v = %v; expected substantial mass below the band", r, x, one)
		}
	}
}

func TestManagedCDFOnAveragePaperExample(t *testing.T) {
	// §3.3: with R=16 and u=0.3 (m=0.7), demoting on average only demotes
	// lines with priority above 1 - 1/(16·0.7) ≈ 0.91, while demoting
	// one-per-eviction puts ~60% of demotions below e=0.9.
	u := 0.3
	if v := ManagedCDFOnAverage(0.9, 16, u); v > 0.01 {
		t.Fatalf("on-average mass below 0.9 = %v, want ~0", v)
	}
	// The paper's prose quotes "60%" here; Equation 2 itself evaluates to
	// ≈ Σ B(i,16)·0.9^i ≈ 0.31 (mean i = R·m = 11.2, 0.9^11.2 ≈ 0.31). The
	// qualitative claim — substantial demotion mass below 0.9 versus none
	// when demoting on average — is what matters and is asserted here.
	if v := ManagedCDFOnePerEviction(0.9, 16, u); v < 0.25 || v > 0.40 {
		t.Fatalf("one-per-eviction mass below 0.9 = %v, want ~0.31 per Eq 2", v)
	}
}

func TestAperturePaperExample(t *testing.T) {
	// §3.4 worked example: 4 equal partitions, C1 = 2C2, R=16, m=0.625.
	// A1 = 16%, A2..4 = 8%.
	cTot := 2.0 + 1 + 1 + 1
	sTot := 4.0
	a1 := Aperture(2, cTot, 1, sTot, 16, 0.625)
	a2 := Aperture(1, cTot, 1, sTot, 16, 0.625)
	if !close(a1, 0.16, 1e-9) {
		t.Fatalf("A1 = %v, want 0.16", a1)
	}
	if !close(a2, 0.08, 1e-9) {
		t.Fatalf("A2 = %v, want 0.08", a2)
	}
}

func TestApertureEqualPartitionsIndependentOfCount(t *testing.T) {
	// §3.4: with equal sizes and churns, Ai = 1/(R·m) regardless of P.
	for _, p := range []int{1, 2, 8, 32, 128} {
		a := Aperture(1, float64(p), 1, float64(p), 52, 0.85)
		if !close(a, 1/(52*0.85), 1e-12) {
			t.Fatalf("P=%d: aperture %v, want %v", p, a, 1/(52*0.85))
		}
	}
}

func TestApertureZeroInputs(t *testing.T) {
	if Aperture(0, 1, 1, 1, 16, 0.7) != 0 || Aperture(1, 1, 0, 1, 16, 0.7) != 0 {
		t.Fatal("aperture with zero churn/size should be 0")
	}
}

func TestTotalBorrowedPaperExample(t *testing.T) {
	// §3.4: R=52, Amax=0.4 → extra 1/(0.4·52) = 4.8% unmanaged.
	if v := TotalBorrowed(0.4, 52); !close(v, 0.048, 0.0005) {
		t.Fatalf("borrowed = %v, want ≈0.048", v)
	}
}

func TestFeedbackOutgrowthPaperExample(t *testing.T) {
	// §4.1: R=52, slack=0.1, Amax=0.4 → ΣΔS = 0.48% of cache.
	if v := FeedbackOutgrowth(0.1, 0.4, 52); !close(v, 0.0048, 5e-5) {
		t.Fatalf("outgrowth = %v, want ≈0.0048", v)
	}
}

func TestUnmanagedFractionPaperExamples(t *testing.T) {
	// §4.3: R=52, Amax=0.4, slack=0.1: Pev=1e-2 needs ~13% unmanaged,
	// Pev=1e-4 needs ~21%.
	u1 := UnmanagedFraction(1e-2, 0.4, 0.1, 52)
	if u1 < 0.12 || u1 > 0.15 {
		t.Fatalf("u(Pev=1e-2) = %v, want ~0.13", u1)
	}
	u2 := UnmanagedFraction(1e-4, 0.4, 0.1, 52)
	if u2 < 0.19 || u2 > 0.23 {
		t.Fatalf("u(Pev=1e-4) = %v, want ~0.21", u2)
	}
}

func TestForcedEvictionProbInvertsSizing(t *testing.T) {
	for _, r := range []int{16, 52} {
		for _, pev := range []float64{1e-1, 1e-2, 1e-3, 1e-4} {
			u := 1 - math.Pow(pev, 1/float64(r))
			if got := ForcedEvictionProb(u, r); !close(got, pev, pev*1e-6) {
				t.Fatalf("Pev round-trip: got %v, want %v", got, pev)
			}
		}
	}
}

func TestMinStableSizePaperExample(t *testing.T) {
	// §6.1 Fig 8 discussion: worst-case MSS = 1/(Amax·R) = 1/(0.5·52) = 3.8%
	// of the cache when a single partition has all the churn.
	v := MinStableSize(1, 1, 1, 0.5, 52, 1)
	if !close(v, 0.0385, 0.0005) {
		t.Fatalf("MSS = %v, want ≈0.038", v)
	}
}

func TestFeedbackApertureTransferFunction(t *testing.T) {
	aMax, slack, ti := 0.4, 0.1, 1000.0
	if v := FeedbackAperture(900, ti, aMax, slack); v != 0 {
		t.Fatalf("below target: %v, want 0", v)
	}
	if v := FeedbackAperture(1000, ti, aMax, slack); v != 0 {
		t.Fatalf("at target: %v, want 0", v)
	}
	if v := FeedbackAperture(1050, ti, aMax, slack); !close(v, 0.2, 1e-9) {
		t.Fatalf("half slack: %v, want 0.2", v)
	}
	if v := FeedbackAperture(1100, ti, aMax, slack); !close(v, 0.4, 1e-9) {
		t.Fatalf("full slack: %v, want Amax", v)
	}
	if v := FeedbackAperture(5000, ti, aMax, slack); v != aMax {
		t.Fatalf("beyond slack: %v, want Amax", v)
	}
	if v := FeedbackAperture(10, 0, aMax, slack); v != aMax {
		t.Fatalf("zero target: %v, want Amax", v)
	}
}

func TestFeedbackApertureMonotone(t *testing.T) {
	f := func(s1, s2 float64) bool {
		a, b := math.Abs(s1), math.Abs(s2)
		if a > b {
			a, b = b, a
		}
		return FeedbackAperture(a, 500, 0.5, 0.1) <= FeedbackAperture(b, 500, 0.5, 0.1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOverheadPaperExample(t *testing.T) {
	// Paper: 8 MB cache (131072 lines of 64 B), 32 partitions, 64-bit tags →
	// ~1.5% overall state overhead (abstract / §4.3).
	o := Overhead(131072, 32, 64, 64)
	if o.PartitionBitsPerTag != 6 {
		t.Fatalf("partition bits = %d, want 6", o.PartitionBitsPerTag)
	}
	if o.Fraction < 0.009 || o.Fraction > 0.02 {
		t.Fatalf("overhead = %v, want ~1-1.5%%", o.Fraction)
	}
	if o.String() == "" {
		t.Fatal("empty overhead string")
	}
}
