// Package analytic implements the closed-form models Vantage is derived from
// (paper §3 and §4.3): the associativity distribution of caches with
// uniformly distributed replacement candidates, the managed-region demotion
// distributions under the managed/unmanaged division, churn-based aperture
// and minimum-stable-size formulas, and the unmanaged-region sizing rule.
//
// These models generate Figures 1, 2 and 5 directly and provide the
// reference values the simulation-based experiments are validated against.
package analytic

import (
	"fmt"
	"math"
)

// AssocCDF is Equation 1: the cumulative associativity distribution
// FA(x) = x^R of a cache whose R replacement candidates are independent and
// uniformly distributed eviction priorities in [0,1]. It is the probability
// that an eviction falls on a line with eviction priority <= x.
func AssocCDF(x float64, r int) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	return math.Pow(x, float64(r))
}

// AssocQuantile inverts AssocCDF: the eviction priority below which a
// fraction p of evictions fall.
func AssocQuantile(p float64, r int) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	return math.Pow(p, 1/float64(r))
}

// Binomial returns C(n,k) as a float64.
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := 1.0
	for i := 0; i < k; i++ {
		out = out * float64(n-i) / float64(i+1)
	}
	return out
}

// ManagedCDFOnePerEviction is Equation 2: the demotion-priority CDF inside
// the managed region when exactly one line is demoted per eviction.
// u is the unmanaged fraction of the cache, r the candidate count.
//
//	FM(x) ≈ Σ_{i=1}^{R-1} B(i,R) · x^i,  B(i,R) = C(R,i)(1-u)^i u^(R-i)
//
// The i=0 and i=R terms are ignored as in the paper (negligible probability).
func ManagedCDFOnePerEviction(x float64, r int, u float64) float64 {
	if x <= 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	sum := 0.0
	for i := 1; i < r; i++ {
		b := Binomial(r, i) * math.Pow(1-u, float64(i)) * math.Pow(u, float64(r-i))
		sum += b * math.Pow(x, float64(i))
	}
	// Normalize by the included probability mass so FM(1) = 1.
	mass := 0.0
	for i := 1; i < r; i++ {
		mass += Binomial(r, i) * math.Pow(1-u, float64(i)) * math.Pow(u, float64(r-i))
	}
	if mass == 0 {
		return 1
	}
	return sum / mass
}

// ManagedCDFOnAverage is Equation 3: the demotion-priority CDF when one line
// is demoted per eviction on average, using an aperture A = 1/(R·m) where
// m = 1-u. Demotions are uniform in [1-A, 1].
func ManagedCDFOnAverage(x float64, r int, u float64) float64 {
	a := Aperture(1, 1, 1, 1, r, 1-u) // single partition: A = 1/(R·m)
	switch {
	case x < 1-a:
		return 0
	case x > 1:
		return 1
	default:
		return (x - (1 - a)) / a
	}
}

// Aperture is Equation 4: the demotion aperture required for a partition
// with churn ci and size si, given total churn cTot and total size sTot over
// all partitions, R candidates and a managed fraction m.
//
//	Ai = (Ci/ΣC) · (ΣS/Si) · 1/(R·m)
func Aperture(ci, cTot, si, sTot float64, r int, m float64) float64 {
	if ci <= 0 || si <= 0 || cTot <= 0 || sTot <= 0 {
		return 0
	}
	return (ci / cTot) * (sTot / si) / (float64(r) * m)
}

// MinStableSize is Equation 5: the minimum stable size (as a fraction of the
// cache) a high-churn partition converges to when its aperture saturates at
// aMax.
//
//	MSSj = (Cj/ΣC) · ΣS / (Amax·R·m)
func MinStableSize(cj, cTot, sTot float64, aMax float64, r int, m float64) float64 {
	if cTot <= 0 {
		return 0
	}
	return (cj / cTot) * sTot / (aMax * float64(r) * m)
}

// TotalBorrowed is Equation 6's closing approximation: the aggregate space
// that saturated partitions borrow from the unmanaged region in the worst
// case, ≈ 1/(Amax·R) of the cache.
func TotalBorrowed(aMax float64, r int) float64 {
	return 1 / (aMax * float64(r))
}

// FeedbackOutgrowth is Equation 9: the aggregate steady-state outgrowth of
// all partitions under feedback-based aperture control with the given slack,
// ≈ slack/(Amax·R).
func FeedbackOutgrowth(slack, aMax float64, r int) float64 {
	return slack / (aMax * float64(r))
}

// UnmanagedFraction is the §4.3 sizing rule: the fraction of the cache that
// must remain unmanaged to bound the probability of a forced eviction from
// the managed region by pEv, allow saturated partitions to reach their
// minimum stable sizes, and absorb feedback-control outgrowth:
//
//	u = 1 - pEv^(1/R) + (1+slack)/(Amax·R)
func UnmanagedFraction(pEv, aMax, slack float64, r int) float64 {
	return 1 - math.Pow(pEv, 1/float64(r)) + (1+slack)/(aMax*float64(r))
}

// ForcedEvictionProb inverts the first term of the sizing rule: the
// worst-case probability that all R candidates fall in a managed region of
// fraction m = 1-u, forcing a managed-region eviction: Pev = (1-u)^R.
func ForcedEvictionProb(u float64, r int) float64 {
	return math.Pow(1-u, float64(r))
}

// FeedbackAperture is Equation 7: the linear transfer function used by
// feedback-based aperture control. si and ti are the partition's actual and
// target sizes (any consistent unit).
//
//	A(s) = 0                         if s <= t
//	       Amax/slack · (s-t)/t      if t < s <= (1+slack)t
//	       Amax                      if s > (1+slack)t
func FeedbackAperture(si, ti, aMax, slack float64) float64 {
	if ti <= 0 {
		return aMax
	}
	switch {
	case si <= ti:
		return 0
	case si <= (1+slack)*ti:
		return aMax / slack * (si - ti) / ti
	default:
		return aMax
	}
}

// StateOverhead reports the state Vantage adds to a cache, per the paper's
// Fig 4 accounting: partition-ID tag bits per line plus 256 bits of
// controller registers per partition, as a fraction of total cache state
// (tags nominally tagBits wide + 64-byte data lines).
type StateOverhead struct {
	PartitionBitsPerTag int     // ceil(log2(partitions+1))
	RegisterBitsPerPart int     // controller registers (Fig 4)
	TagBits             int     // nominal tag width
	LineBytes           int     // data bytes per line
	Lines               int     // cache lines
	Partitions          int     // partition count
	Fraction            float64 // added state / baseline state
}

// Overhead computes the Vantage state overhead for a cache with the given
// geometry and partition count (e.g. 32 partitions on an 8 MB cache ≈ 1.5%).
func Overhead(lines, partitions, tagBits, lineBytes int) StateOverhead {
	idBits := 1
	for (1 << idBits) < partitions+1 { // +1 for the unmanaged region's ID
		idBits++
	}
	const regBits = 256                                         // Fig 4: per-partition registers incl. threshold table
	baseline := float64(lines) * float64(tagBits+8*lineBytes+8) // tags + data + 8b timestamps
	added := float64(lines)*float64(idBits) + float64(partitions)*regBits
	return StateOverhead{
		PartitionBitsPerTag: idBits,
		RegisterBitsPerPart: regBits,
		TagBits:             tagBits,
		LineBytes:           lineBytes,
		Lines:               lines,
		Partitions:          partitions,
		Fraction:            added / baseline,
	}
}

// String formats the overhead for display.
func (o StateOverhead) String() string {
	return fmt.Sprintf("%d partitions on %d lines: %d tag bits/line + %d reg bits/partition = %.2f%% overhead",
		o.Partitions, o.Lines, o.PartitionBitsPerTag, o.RegisterBitsPerPart, 100*o.Fraction)
}
