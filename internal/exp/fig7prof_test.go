package exp

import (
	"os"
	"testing"
)

// BenchmarkFig7Microcosm is the tentpole wall-clock target's in-tree twin:
// the exact configuration the bench report's fig7 rows time (LargeCMP at
// ScaleUnit, 25k-instruction window, 6 mixes), runnable under the profiler
// with `go test -bench Fig7Microcosm -cpuprofile`.
func BenchmarkFig7Microcosm(b *testing.B) {
	m := LargeCMP(ScaleUnit)
	m.InstrLimit = 25_000
	for i := 0; i < b.N; i++ {
		Fig7(m, 6, nil)
	}
}

// BenchmarkFig7MicrocosmFast is the same microcosm on the fast tier.
func BenchmarkFig7MicrocosmFast(b *testing.B) {
	m := LargeCMP(ScaleUnit)
	m.InstrLimit = 25_000
	m.FastTier = true
	for i := 0; i < b.N; i++ {
		Fig7(m, 6, nil)
	}
}

// TestWarmupSensitivity documents why the fast tier does NOT shorten cache
// warmup, the single biggest wall-clock lever: Fig 7 gmeans are still
// converging at the configured 250k-instruction warmup, so any cut shifts
// per-scheme results systematically (measured on this configuration:
// 250k→150k moves Vantage's gmean -2.4%, →100k -10%, →60k -34%), far
// outside the ±0.5% equivalence contract. Gated behind an env var — it runs
// Fig 7 four times (~3 min) and exists to be rerun when warmup or the
// equivalence budget is retuned: VANTAGE_WARMUP_SWEEP=1 go test
// ./internal/exp -run TestWarmupSensitivity -v
func TestWarmupSensitivity(t *testing.T) {
	if os.Getenv("VANTAGE_WARMUP_SWEEP") == "" {
		t.Skip("set VANTAGE_WARMUP_SWEEP=1 to run the warmup convergence sweep")
	}
	for _, warm := range []uint64{250_000, 150_000, 100_000, 60_000} {
		m := LargeCMP(ScaleUnit)
		m.InstrLimit = 25_000
		m.WarmupInstr = warm
		r := Fig7(m, 6, nil)
		for _, c := range r.Curves {
			t.Logf("warm=%d scheme=%s gmean=%.5f mean=%.5f", warm, c.Scheme, c.Summary.GeoMean, c.Summary.Mean)
		}
	}
}
