package exp

import (
	"fmt"
	"strings"

	"vantage/internal/ctrl"
	"vantage/internal/plot"
	"vantage/internal/sim"
	"vantage/internal/stats"
	"vantage/internal/ucp"
	"vantage/internal/workload"
)

// Fig8Result is the target-vs-actual size tracking of one partition over
// time under each partitioning scheme (Fig 8), plus associativity heat maps
// for Vantage (demotion priorities) and way-partitioning (eviction
// priorities).
type Fig8Result struct {
	Machine   Machine
	MixID     string
	Partition int
	// One series pair per scheme.
	Schemes []string
	Target  []*stats.Series // x = cycle, y = target lines
	Actual  []*stats.Series
	// Heatmaps[i] is nil if the scheme does not expose priorities.
	Heatmaps []*stats.Heatmap
	// HeatSliceCycles is the heat-map column width, in cycles.
	HeatSliceCycles uint64
}

// RunFig8 traces partition `part` of the given mix under way-partitioning,
// Vantage and PIPP.
func RunFig8(m Machine, mixID string, part int) Fig8Result {
	all := m.Mixes(0)
	var mix workload.Mix
	found := false
	canonical := workload.CanonicalMixID(mixID)
	for _, cand := range all {
		if cand.ID == canonical {
			mix, found = cand, true
			break
		}
	}
	if !found {
		panic(fmt.Sprintf("exp: unknown mix %q", mixID))
	}
	schemes := []Scheme{WayPartScheme(), DefaultVantageScheme(), PIPPScheme()}
	out := Fig8Result{
		Machine:         m,
		MixID:           mixID,
		Partition:       part,
		HeatSliceCycles: m.RepartitionCycles,
	}
	for _, sch := range schemes {
		out.Schemes = append(out.Schemes, sch.Name)
		target := &stats.Series{Name: sch.Name + "-target"}
		actual := &stats.Series{Name: sch.Name + "-actual"}
		l2 := sch.Build(m, m.Seed^0xf18)
		var hm *stats.Heatmap
		var cycleNow uint64
		if obs, ok := l2.(ctrl.Observable); ok {
			hm = stats.NewHeatmap(64)
			obs.SetEvictionObserver(func(p int, pri float64, dem bool) {
				if p == part {
					hm.Add(int(cycleNow/out.HeatSliceCycles), pri)
				}
			})
		}
		alloc := ucp.NewPolicy(m.Cores, m.BaselineWays, m.L2Lines, sch.Granularity, m.Seed^0xa110c)
		sim.Run(sim.Config{
			Apps:               mix.Apps,
			L2:                 l2,
			L1Lines:            m.L1Lines,
			L1Ways:             m.L1Ways,
			InstrLimit:         m.InstrLimit,
			WarmupInstr:        m.WarmupInstr,
			Alloc:              alloc,
			RepartitionCycles:  m.RepartitionCycles,
			PartitionableLines: sch.PartitionableLines(m.L2Lines),
			OnRepartition: func(cycle uint64, targets, sizes []int) {
				cycleNow = cycle
				target.Append(float64(cycle), float64(targets[part]))
				actual.Append(float64(cycle), float64(sizes[part]))
			},
		})
		out.Target = append(out.Target, target)
		out.Actual = append(out.Actual, actual)
		out.Heatmaps = append(out.Heatmaps, hm)
	}
	return out
}

// TrackingError returns, for scheme index i, the mean relative deviation of
// actual size below target (undershoot; the paper's complaint about PIPP is
// that the target is often not met) and above target (overshoot).
func (r Fig8Result) TrackingError(i int) (under, over float64) {
	t, a := r.Target[i], r.Actual[i]
	n := 0
	for k := 0; k < t.Len() && k < a.Len(); k++ {
		if t.Y[k] <= 0 {
			continue
		}
		d := (a.Y[k] - t.Y[k]) / t.Y[k]
		if d < 0 {
			under -= d
		} else {
			over += d
		}
		n++
	}
	if n > 0 {
		under /= float64(n)
		over /= float64(n)
	}
	return under, over
}

// Table renders tracking quality per scheme.
func (r Fig8Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8: partition %d size tracking on mix %s (%s)\n", r.Partition, r.MixID, r.Machine.Name)
	b.WriteString("scheme                samples  mean-undershoot  mean-overshoot\n")
	for i, name := range r.Schemes {
		u, o := r.TrackingError(i)
		fmt.Fprintf(&b, "%-22s%8d%16.1f%%%15.1f%%\n", name, r.Target[i].Len(), 100*u, 100*o)
	}
	for i, name := range r.Schemes {
		if r.Heatmaps[i] == nil {
			continue
		}
		fmt.Fprintf(&b, "\n%s priority heat map (fraction of victims below priority, per time slice):\n", name)
		b.WriteString(heatmapText(r.Heatmaps[i]))
	}
	return b.String()
}

// heatmapText renders a small text heat map: rows are priority thresholds,
// columns time slices (up to 16 shown).
func heatmapText(h *stats.Heatmap) string {
	var b strings.Builder
	cols := h.Cols()
	step := 1
	if cols > 16 {
		step = cols / 16
	}
	for _, y := range []float64{0.5, 0.8, 0.9, 0.95} {
		fmt.Fprintf(&b, "  <%0.2f ", y)
		for c := 0; c < cols; c += step {
			fmt.Fprintf(&b, "%5.2f", h.At(c, y))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Plot renders the target-vs-actual series of one scheme as an ASCII chart.
func (r Fig8Result) Plot(i, width, height int) string {
	c := plot.New(fmt.Sprintf("%s: partition %d target vs actual (mix %s)", r.Schemes[i], r.Partition, r.MixID), width, height)
	c.XLabel = "cycles"
	c.YLabel = "lines"
	c.Add(plot.Series{Name: "target", X: r.Target[i].X, Y: r.Target[i].Y})
	c.Add(plot.Series{Name: "actual", X: r.Actual[i].X, Y: r.Actual[i].Y})
	return c.String()
}

// CSV renders the size-tracking time series.
func (r Fig8Result) CSV() string {
	var b strings.Builder
	b.WriteString("scheme,cycle,target,actual\n")
	for i, name := range r.Schemes {
		t, a := r.Target[i], r.Actual[i]
		for k := 0; k < t.Len() && k < a.Len(); k++ {
			fmt.Fprintf(&b, "%s,%.0f,%.0f,%.0f\n", name, t.X[k], t.Y[k], a.Y[k])
		}
	}
	return b.String()
}
