// Package exp is the experiment harness: it reproduces every table and
// figure of the paper's evaluation (§6) on the simulated machines of Table 2,
// scaled so the experiments run on a laptop. Each experiment returns a typed
// result with text-table and CSV renderers; cmd/vantage-sim and cmd/figures
// drive them, and bench_test.go wraps each in a benchmark.
package exp

import (
	"fmt"

	"vantage/internal/hash"
	"vantage/internal/sim"
	"vantage/internal/ucp"
	"vantage/internal/workload"
)

// Machine describes a simulated CMP (the paper's Table 2), scaled.
type Machine struct {
	// Name identifies the configuration, e.g. "4-core" or "32-core".
	Name string
	// Cores is the core (and partition) count.
	Cores int
	// L2Lines is the shared L2 capacity in lines (paper: 2 MB = 32768 lines
	// for 4 cores, 8 MB = 131072 lines for 32 cores).
	L2Lines int
	// L1Lines/L1Ways size the private L1s (paper: 32 KB = 512 lines, 4-way).
	L1Lines, L1Ways int
	// InstrLimit and WarmupInstr are per-core instruction budgets (paper:
	// 200 M measured after 20 B of fast-forward).
	InstrLimit, WarmupInstr uint64
	// RepartitionCycles is the UCP interval (paper: 5 M cycles).
	RepartitionCycles uint64
	// BaselineWays is the set-associative baseline's way count (paper: 16
	// ways at 4 cores, 64 ways at 32 cores); also the UMON associativity.
	BaselineWays int
	// MixesPerClass scales the workload count (paper: 10 → 350 mixes).
	MixesPerClass int
	// Seed makes mixes and arrays reproducible.
	Seed uint64
	// Contention optionally models L2 banking and memory bandwidth
	// (zero value: the paper's zero-load latencies).
	Contention sim.Contention
	// StreamBudget caps the references memoized per app when the harness
	// records reference streams (see Record). 0 derives the budget from the
	// instruction limits; negative disables recording entirely (every run
	// generates its streams live).
	StreamBudget int
	// FastTier, when set, runs the statistically-equivalent fast simulation
	// tier: workload generators use alias-table sampling with a cheaper PRNG
	// (workload.Params.Fast) and the simulator relaxes its repartition
	// observer assertion (sim.Config.RelaxedRepartition). Machine geometry,
	// mix composition, warmup, and instruction budgets are unchanged — the
	// tier alters only reference-stream draw sequences, so results track the
	// exact tier statistically (±0.5% per-scheme gmean on Fig 7; enforced by
	// TestFastTierEquivalence) but are NOT bit-identical. Never use for
	// goldens.
	FastTier bool
}

// params returns the workload parameters for this machine's tier.
func (m Machine) params() workload.Params {
	return workload.Params{CacheLines: m.L2Lines, Fast: m.FastTier}
}

// Scale adjusts a machine's size by dividing cache capacity and instruction
// budgets; working sets scale with the cache automatically because workload
// parameters are relative to L2Lines.
type Scale int

// Scales for experiments.
const (
	// ScaleUnit is the smallest useful configuration (unit tests, quick
	// benches): 2048-line L2 for 4 cores.
	ScaleUnit Scale = iota
	// ScaleSmall is the default experiment scale: 4096-line L2 for 4 cores.
	ScaleSmall
	// ScaleFull approaches the paper's geometry (32768-line L2 for 4
	// cores); slow, intended for cmd runs only.
	ScaleFull
)

// SmallCMP returns the 4-core machine of the paper's small-scale evaluation.
func SmallCMP(s Scale) Machine {
	m := Machine{
		Name:          "4-core",
		Cores:         4,
		L1Ways:        4,
		BaselineWays:  16,
		MixesPerClass: 10,
		Seed:          2011,
	}
	switch s {
	case ScaleUnit:
		m.L2Lines, m.L1Lines = 2048, 32
		m.InstrLimit, m.WarmupInstr, m.RepartitionCycles = 150_000, 150_000, 100_000
	case ScaleSmall:
		m.L2Lines, m.L1Lines = 4096, 64
		m.InstrLimit, m.WarmupInstr, m.RepartitionCycles = 400_000, 300_000, 250_000
	case ScaleFull:
		m.L2Lines, m.L1Lines = 32768, 512
		m.InstrLimit, m.WarmupInstr, m.RepartitionCycles = 4_000_000, 2_000_000, 2_000_000
	default:
		panic("exp: unknown scale")
	}
	return m
}

// LargeCMP returns the 32-core machine of the large-scale evaluation
// (Table 2). The set-associative baseline uses 64 ways, as in Fig 7.
// Warmup budgets are sized to cover the slowest global transient — the
// streaming apps filling the L2 at one insertion per memory latency each
// (roughly L2Lines x MemLat / cores cycles) — which the paper's 20 B
// instructions of fast-forward cover implicitly.
func LargeCMP(s Scale) Machine {
	m := Machine{
		Name:          "32-core",
		Cores:         32,
		L1Ways:        4,
		BaselineWays:  64,
		MixesPerClass: 10,
		Seed:          2011,
	}
	switch s {
	case ScaleUnit:
		m.L2Lines, m.L1Lines = 8192, 32
		m.InstrLimit, m.WarmupInstr, m.RepartitionCycles = 60_000, 250_000, 50_000
	case ScaleSmall:
		m.L2Lines, m.L1Lines = 16384, 64
		m.InstrLimit, m.WarmupInstr, m.RepartitionCycles = 150_000, 500_000, 100_000
	case ScaleFull:
		m.L2Lines, m.L1Lines = 131072, 512
		m.InstrLimit, m.WarmupInstr, m.RepartitionCycles = 2_000_000, 1_000_000, 2_000_000
	default:
		panic("exp: unknown scale")
	}
	return m
}

// Mixes generates the machine's multiprogrammed workloads. For the paper's
// full sets use limit <= 0 (35 × MixesPerClass); a positive limit caps the
// count while preserving class coverage (classes round-robin first).
func (m Machine) Mixes(limit int) []workload.Mix {
	per := m.MixesPerClass
	if limit > 0 {
		need := (limit + 34) / 35
		if need < per {
			per = need
		}
	}
	all := workload.Mixes(m.Cores, per, m.params(), m.Seed)
	if limit > 0 && limit < len(all) {
		// Interleave by class — take mix i of every class before mix i+1 —
		// with the classes visited in a deterministic shuffled order, so a
		// small subset samples all four categories instead of the
		// lexicographically-first (insensitive-heavy) classes.
		order := make([]int, 35)
		for i := range order {
			order[i] = i
		}
		rng := hash.NewRand(m.Seed ^ 0x50f)
		for i := len(order) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		var out []workload.Mix
		for i := 0; i < per && len(out) < limit; i++ {
			for _, c := range order {
				if len(out) >= limit {
					break
				}
				idx := c*per + i
				if idx < len(all) {
					out = append(out, all[idx])
				}
			}
		}
		return out
	}
	return all
}

// RunMix simulates one mix on one scheme and returns the result.
// Mix regenerates the single named mix with fresh app state. Mix generation
// is deterministic per (class, index, machine seed), so the returned mix has
// byte-identical app streams to the same entry of Mixes — but its own stream
// positions and PRNGs, which is what concurrent runs need: sharing one
// workload.Mix between runs lets one run's progress leak into the next.
func (m Machine) Mix(id string) (workload.Mix, error) {
	class, idx, err := workload.ParseMixID(id)
	if err != nil {
		return workload.Mix{}, err
	}
	if idx < 1 || idx > m.MixesPerClass {
		return workload.Mix{}, fmt.Errorf("exp: mix index %d outside 1..%d", idx, m.MixesPerClass)
	}
	return workload.NewMix(class, idx, m.Cores/4, m.params(), m.Seed), nil
}

func (m Machine) RunMix(mix workload.Mix, sch Scheme) sim.Result {
	cfg := m.runConfig(mix.ID, sch)
	cfg.Apps = mix.Apps
	return sim.Run(cfg)
}

// RunMixMiss simulates one mix on one scheme over memoized post-L1 segment
// streams (see RecordMisses): bit-identical results to RunMix on the same
// mix, with the private L1s' work done once instead of once per scheme.
func (m Machine) RunMixMiss(mixID string, miss []*sim.MissReplay, sch Scheme) sim.Result {
	cfg := m.runConfig(mixID, sch)
	cfg.Miss = miss
	return sim.Run(cfg)
}

// runConfig assembles the simulator configuration for one scheme run, with
// the reference source (Apps or Miss) left to the caller.
func (m Machine) runConfig(mixID string, sch Scheme) sim.Config {
	l2 := sch.Build(m, uint64(len(mixID))*1337+m.Seed)
	// Note the sim.Allocator interface type: assigning a nil *ucp.Policy
	// would produce a non-nil interface and crash the baseline runs.
	var alloc sim.Allocator
	partLines := 0
	if sch.UsesUCP {
		if sch.BuildAllocator != nil {
			alloc = sch.BuildAllocator(m, m.Seed^0xa110c)
		} else {
			alloc = ucp.NewPolicy(m.Cores, m.BaselineWays, m.L2Lines, sch.Granularity, m.Seed^0xa110c)
		}
		partLines = sch.PartitionableLines(m.L2Lines)
	}
	return sim.Config{
		L2:                 l2,
		L1Lines:            m.L1Lines,
		L1Ways:             m.L1Ways,
		InstrLimit:         m.InstrLimit,
		WarmupInstr:        m.WarmupInstr,
		Alloc:              alloc,
		RepartitionCycles:  m.RepartitionCycles,
		PartitionableLines: partLines,
		Contention:         m.Contention,
		RelaxedRepartition: m.FastTier,
	}
}

// streamBudget is the per-app recorded-reference budget. Consumption is not
// bounded by the instruction budget alone: frozen cores keep issuing
// references until the last core finishes, so a fast core consumes roughly
// (slowest CPI / own CPI) times its own instruction count — measured at
// about 4x on the bench configurations. 16x leaves ample headroom, and the
// cap (8 Mi references ≈ 100 MB/app) bounds pathological ScaleFull cases;
// chunks materialize lazily, so the budget bounds worst-case memory, not
// actual use. Runs that outrun the budget fall through to live generation.
func (m Machine) streamBudget() int {
	if m.StreamBudget != 0 {
		return m.StreamBudget
	}
	b := 16 * int(m.InstrLimit+m.WarmupInstr)
	if b > 8<<20 {
		b = 8 << 20
	}
	return b + 64
}

// Record memoizes the mix's app streams so the baseline and every scheme
// replay identical references without regenerating them (App.Next has no
// feedback from the cache, so a stream is a pure function of its app's
// construction). The recording's remake factory rebuilds single apps via
// Mix — needed only by replay cursors that outrun the budget. Returns nil
// when recording is disabled (StreamBudget < 0); callers fall back to live
// generation.
func (m Machine) Record(mix workload.Mix) *workload.MixRecording {
	budget := m.streamBudget()
	if budget <= 0 {
		return nil
	}
	remake := func(i int) workload.App {
		fresh, err := m.Mix(mix.ID)
		if err != nil {
			panic(fmt.Sprintf("exp: cannot rebuild mix %q: %v", mix.ID, err))
		}
		return fresh.Apps[i]
	}
	return workload.NewMixRecording(mix, remake, budget)
}

// RecordMisses layers post-L1 segment recorders (sim.MissRecorder) over a
// mix recording, one per app: the L1s are simulated once per (mix, app) and
// the baseline plus every scheme replay the shared post-L1 stream. Each
// recorder consumes the raw recording through its own single replay cursor,
// so raw chunks release right behind the filter and past the raw budget the
// cursor claims the live source transparently. Returns nil — callers fall
// back to raw replay — when recording is disabled or the machine has no L1s.
func (m Machine) RecordMisses(rec *workload.MixRecording) []*sim.MissRecorder {
	if rec == nil || m.L1Lines <= 0 {
		return nil
	}
	out := make([]*sim.MissRecorder, len(rec.Recs))
	for i, r := range rec.Recs {
		out[i] = sim.NewMissRecorder(r.ReplaySet(1)[0], m.L1Lines, m.L1Ways,
			sim.DefaultLatencies(), m.WarmupInstr, m.InstrLimit)
	}
	return out
}

// MissSets opens n replay cursors on each recorder and transposes them into
// n per-run cursor slices (one cursor per app), ready for RunMixMiss.
func MissSets(recs []*sim.MissRecorder, n int) [][]*sim.MissReplay {
	byApp := make([][]*sim.MissReplay, len(recs))
	for i, mr := range recs {
		byApp[i] = mr.MissSet(n)
	}
	out := make([][]*sim.MissReplay, n)
	for r := range out {
		out[r] = make([]*sim.MissReplay, len(recs))
		for i := range recs {
			out[r][i] = byApp[i][r]
		}
	}
	return out
}

// ReplayOrRemake returns a fresh pass over the mix's streams: a replay
// cursor set when rec is non-nil, otherwise a regenerated mix (recording
// disabled). Both start at reference zero with byte-identical streams.
func (m Machine) ReplayOrRemake(rec *workload.MixRecording, id string) workload.Mix {
	if rec != nil {
		return rec.Replay()
	}
	fresh, err := m.Mix(id)
	if err != nil {
		panic(fmt.Sprintf("exp: cannot rebuild mix %q: %v", id, err))
	}
	return fresh
}

// WithContention returns a copy of the machine with the paper's Table 2
// contention parameters enabled: 4 L2 banks and 32 GB/s peak memory
// bandwidth (16 bytes/cycle at 2 GHz = one 64 B line per 4 cycles).
func (m Machine) WithContention() Machine {
	m.Contention = sim.Contention{L2Banks: 4, L2BankBusy: 2, MemCyclesPerLine: 4}
	return m
}

// String summarizes the machine.
func (m Machine) String() string {
	return fmt.Sprintf("%s: %d lines L2, %d-way SA baseline, %d instrs/core",
		m.Name, m.L2Lines, m.BaselineWays, m.InstrLimit)
}
