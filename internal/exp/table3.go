package exp

import (
	"fmt"
	"strings"

	"vantage/internal/cache"
	"vantage/internal/ctrl"
	"vantage/internal/hash"
	"vantage/internal/repl"
	"vantage/internal/sim"
	"vantage/internal/workload"
)

// Table3Row is one application's solo characterization: L2 MPKI at a range
// of cache sizes, and the category the paper's classification rule assigns.
type Table3Row struct {
	App      string
	Intended workload.Category
	Assigned workload.Category
	// MPKI[i] is the L2 MPKI at Sizes[i] lines.
	MPKI []float64
}

// Table3Result is the workload-classification experiment (§5, Table 3):
// each app runs alone against caches from 1/32 to 4x the nominal capacity,
// and is classified by the paper's rule: < 5 MPKI everywhere = insensitive;
// gradual improvement = cache-friendly; an abrupt drop near capacity =
// cache-fitting; no benefit = thrashing/streaming.
type Table3Result struct {
	Machine Machine
	Sizes   []int
	Rows    []Table3Row
}

// RunTable3 characterizes one representative app per category, plus
// appsPerCat-1 extra samples per category.
func RunTable3(m Machine, appsPerCat int, progress func(done, total int)) Table3Result {
	if appsPerCat < 1 {
		appsPerCat = 1
	}
	sizes := []int{m.L2Lines / 32, m.L2Lines / 8, m.L2Lines / 2, m.L2Lines, m.L2Lines * 2}
	out := Table3Result{Machine: m, Sizes: sizes}
	rng := hash.NewRand(m.Seed ^ 0x7ab1e3)
	params := workload.Params{CacheLines: m.L2Lines}
	total := 4 * appsPerCat * len(sizes)
	done := 0
	for cat := workload.Insensitive; cat <= workload.Thrashing; cat++ {
		for k := 0; k < appsPerCat; k++ {
			app := workload.NewApp(cat, params, rng)
			row := Table3Row{App: app.Name(), Intended: cat}
			for _, lines := range sizes {
				row.MPKI = append(row.MPKI, soloRun(m, app, lines))
				done++
				if progress != nil {
					progress(done, total)
				}
			}
			row.Assigned = Classify(row.MPKI, sizes, m.L2Lines)
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// soloRun measures app's L2 MPKI with a private cache of the given size.
func soloRun(m Machine, app workload.App, lines int) float64 {
	arr := cache.NewZCache(ceilMult(lines, 4), 4, 16, m.Seed^uint64(lines))
	l2 := ctrl.NewUnpartitioned(arr, repl.NewLRUTimestamp(arr.NumLines()), 1)
	res := sim.Run(sim.Config{
		Apps:        []workload.App{app},
		L2:          l2,
		L1Lines:     m.L1Lines,
		L1Ways:      m.L1Ways,
		InstrLimit:  m.InstrLimit / 2,
		WarmupInstr: m.WarmupInstr / 2,
	})
	return res.Cores[0].L2MPKI
}

// ceilMult rounds n up so that n/ways is a power of two (zcache geometry).
func ceilMult(n, ways int) int {
	spw := 1
	for spw*ways < n {
		spw <<= 1
	}
	return spw * ways
}

// Classify applies the paper's Table 3 rule to a measured MPKI curve.
// mpkiThreshold = 5 everywhere → insensitive; an abrupt drop (>60% of the
// total improvement in one step) at sizes near or above half the nominal
// capacity → cache-fitting; monotone improvement → cache-friendly;
// otherwise thrashing/streaming.
func Classify(mpki []float64, sizes []int, nominal int) workload.Category {
	maxM := 0.0
	for _, v := range mpki {
		if v > maxM {
			maxM = v
		}
	}
	if maxM < 5 {
		return workload.Insensitive
	}
	first, last := mpki[0], mpki[len(mpki)-1]
	improvement := first - last
	if improvement < 0.1*first {
		return workload.Thrashing
	}
	// Find the largest single-step drop.
	bigDrop, dropIdx := 0.0, -1
	for i := 1; i < len(mpki); i++ {
		if d := mpki[i-1] - mpki[i]; d > bigDrop {
			bigDrop, dropIdx = d, i
		}
	}
	if bigDrop > 0.6*improvement && dropIdx >= 0 && sizes[dropIdx] >= nominal/2 {
		return workload.Fitting
	}
	return workload.Friendly
}

// Table renders the classification.
func (r Table3Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: workload classification by solo MPKI (%s)\n", r.Machine.Name)
	fmt.Fprintf(&b, "%-28s%-10s%-10s", "app", "intended", "assigned")
	for _, s := range r.Sizes {
		fmt.Fprintf(&b, "%10s", fmt.Sprintf("%dL", s))
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-28s%-10c%-10c", row.App, row.Intended.Letter(), row.Assigned.Letter())
		for _, v := range row.MPKI {
			fmt.Fprintf(&b, "%10.1f", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Accuracy returns the fraction of apps whose assigned category matches the
// intended one.
func (r Table3Result) Accuracy() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	ok := 0
	for _, row := range r.Rows {
		if row.Intended == row.Assigned {
			ok++
		}
	}
	return float64(ok) / float64(len(r.Rows))
}
