package exp

import (
	"fmt"
	"math"
	"strings"

	"vantage/internal/analytic"
	"vantage/internal/cache"
	"vantage/internal/hash"
	"vantage/internal/stats"
)

// AssocResult is the empirical associativity study backing §3.2: for each
// array design, the measured CDF of eviction priorities under exact LRU and
// uniform random traffic, compared against the analytical FA(x) = x^R. The
// zcache paper (and Fig 1 here) claims zcaches and skew-associative caches
// match the uniformity assumption while set-associative arrays fall short;
// Vantage's guarantees inherit from this property.
//
// Measured finding (recorded in EXPERIMENTS.md): skew-associative and the
// idealized random-candidates arrays match x^R tightly; hashed
// set-associative arrays deviate badly (as the paper says); zcache walks
// sit in between — under exact LRU the oldest lines accumulate in slots
// with few inbound walk pointers and hide from the candidate stream,
// reducing the effective R to roughly 0.4x nominal, and to ~0.7x under the
// realistic coarse-timestamp LRU whose ties wash most of the selection
// effect out. The ordering the paper relies on (zcache >> set-assoc at
// equal R) holds throughout.
type AssocResult struct {
	Arrays []string
	R      []int // nominal candidate counts
	// CDF[i] is the measured eviction-priority CDF of array i.
	CDF []*stats.CDF
	// MaxDev[i] is the largest |measured - analytic| over x in [0,1].
	MaxDev []float64
}

// RunAssociativity measures eviction-priority distributions on the named
// designs ("SA16", "SA64", "Skew4", "Z4/16", "Z4/52", "Rand/16",
// "Rand/52"), with numLines lines and the given number of evictions
// sampled after warmup.
func RunAssociativity(designs []string, numLines, evictions int, seed uint64) AssocResult {
	if len(designs) == 0 {
		designs = []string{"SA16", "Skew4", "Z4/16", "Z4/52", "Rand/52"}
	}
	var out AssocResult
	for _, d := range designs {
		arr, r := buildArray(d, numLines, seed)
		cdf := measureAssoc(arr, numLines, evictions, seed)
		dev := 0.0
		for x := 0.0; x <= 1.0; x += 0.01 {
			diff := math.Abs(cdf.At(x) - analytic.AssocCDF(x, r))
			if diff > dev {
				dev = diff
			}
		}
		out.Arrays = append(out.Arrays, d)
		out.R = append(out.R, r)
		out.CDF = append(out.CDF, cdf)
		out.MaxDev = append(out.MaxDev, dev)
	}
	return out
}

// buildArray constructs a named design and returns its nominal R.
func buildArray(design string, numLines int, seed uint64) (cache.Array, int) {
	switch design {
	case "SA16":
		return cache.NewSetAssoc(numLines, 16, true, seed), 16
	case "SA64":
		return cache.NewSetAssoc(numLines, 64, true, seed), 64
	case "Skew4":
		return cache.NewSkew(numLines, 4, seed), 4
	case "Z4/16":
		return cache.NewZCache(numLines, 4, 16, seed), 16
	case "Z4/52":
		return cache.NewZCache(numLines, 4, 52, seed), 52
	case "Rand/16":
		return cache.NewRandomCands(numLines, 16, seed), 16
	case "Rand/52":
		return cache.NewRandomCands(numLines, 52, seed), 52
	}
	panic(fmt.Sprintf("exp: unknown array design %q", design))
}

// measureAssoc drives uniform random single-use-distribution traffic with
// true LRU ranking and records each eviction's priority: the fraction of
// resident lines older than the victim (1.0 = globally oldest, the perfect
// victim).
func measureAssoc(arr cache.Array, numLines, evictions int, seed uint64) *stats.CDF {
	n := arr.NumLines()
	ts := make([]uint64, n)
	clock := uint64(0)
	var quant quantU64
	rng := hash.NewRand(seed ^ 0xa550c)
	cdf := stats.NewCDF(256)
	warm := 0
	var cands []cache.LineID
	if rel, ok := arr.(cache.Relocator); ok {
		rel.SetMoveHook(func(src, dst cache.LineID) { ts[dst] = ts[src] })
	}
	for done := 0; done < evictions; {
		addr := rng.Uint64() | 1
		if id, ok := arr.Lookup(addr); ok {
			quant.move(ts[id], clock)
			ts[id] = clock
			clock++
			continue
		}
		cands = arr.Candidates(addr, cands[:0])
		victim := cache.InvalidLine
		for _, c := range cands {
			if !arr.Line(c).Valid {
				victim = c
				break
			}
		}
		if victim == cache.InvalidLine {
			// LRU among candidates.
			victim = cands[0]
			for _, c := range cands[1:] {
				if ts[c] < ts[victim] {
					victim = c
				}
			}
			warm++
			if warm > n { // fully warm: start sampling
				cdf.Add(quant.priority(ts[victim]))
				done++
			}
			quant.remove(ts[victim])
		}
		id, _ := arr.Install(addr, victim)
		ts[id] = clock
		quant.add(clock)
		clock++
	}
	return cdf
}

// quantU64 tracks the multiset of 64-bit timestamps of resident lines to
// compute exact eviction priorities (fraction of lines older than the
// victim). A Fenwick tree over a sliding window would be fancier; a simple
// ordered map over coarse buckets suffices at experiment sizes.
type quantU64 struct {
	tss   map[uint64]struct{}
	total int
}

func (q *quantU64) add(ts uint64) {
	if q.tss == nil {
		q.tss = make(map[uint64]struct{})
	}
	q.tss[ts] = struct{}{}
	q.total++
}

func (q *quantU64) remove(ts uint64) {
	delete(q.tss, ts)
	q.total--
}

func (q *quantU64) move(old, new uint64) {
	q.remove(old)
	q.add(new)
}

// priority returns 1 - frac(lines strictly older than ts): 1.0 for the
// globally oldest line.
func (q *quantU64) priority(ts uint64) float64 {
	if q.total <= 1 {
		return 1
	}
	older := 0
	for t := range q.tss {
		if t < ts {
			older++
		}
	}
	return 1 - float64(older)/float64(q.total)
}

// Table renders measured-vs-analytic CDF values.
func (r AssocResult) Table() string {
	var b strings.Builder
	b.WriteString("Empirical associativity vs FA(x)=x^R (uniform traffic, LRU)\n")
	b.WriteString("array    R    F(0.5)  x^R(0.5)   F(0.8)  x^R(0.8)   F(0.9)  x^R(0.9)   maxdev\n")
	for i, name := range r.Arrays {
		rr := r.R[i]
		fmt.Fprintf(&b, "%-8s %-4d", name, rr)
		for _, x := range []float64{0.5, 0.8, 0.9} {
			fmt.Fprintf(&b, "%8.4f%10.4f ", r.CDF[i].At(x), analytic.AssocCDF(x, rr))
		}
		fmt.Fprintf(&b, "%8.4f\n", r.MaxDev[i])
	}
	return b.String()
}
