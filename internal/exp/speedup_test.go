package exp

import (
	"strings"
	"testing"

	"vantage/internal/sim"
)

func TestSpeedupMetrics(t *testing.T) {
	cores := []sim.CoreStats{{IPC: 0.5}, {IPC: 0.25}}
	solo := []float64{1.0, 0.5}
	ws, hs := speedupMetrics(cores, solo)
	if ws != 1.0 { // 0.5 + 0.5
		t.Fatalf("weighted = %v", ws)
	}
	if hs != 0.5 { // harmonic mean of {0.5, 0.5}
		t.Fatalf("harmonic = %v", hs)
	}
}

func TestSpeedupMetricsSkipsZeroSolo(t *testing.T) {
	cores := []sim.CoreStats{{IPC: 0.5}, {IPC: 0.25}}
	solo := []float64{1.0, 0}
	ws, _ := speedupMetrics(cores, solo)
	if ws != 0.5 {
		t.Fatalf("weighted with zero solo = %v", ws)
	}
	ws, hs := speedupMetrics(nil, nil)
	if ws != 0 || hs != 0 {
		t.Fatal("empty metrics not zero")
	}
}

func TestGeoMean(t *testing.T) {
	if g := geoMean([]float64{2, 8}); g != 4 {
		t.Fatalf("geoMean = %v", g)
	}
	if g := geoMean(nil); g != 0 {
		t.Fatalf("empty geoMean = %v", g)
	}
}

func TestRunFairnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	m := SmallCMP(ScaleUnit)
	m.InstrLimit, m.WarmupInstr = 30_000, 30_000
	calls := 0
	r := RunFairness(m, LRUBaseline(), []Scheme{DefaultVantageScheme()}, 3,
		func(done, total int) { calls++ })
	if len(r.MixIDs) != 3 || len(r.Schemes) != 1 {
		t.Fatalf("shape: %d mixes %d schemes", len(r.MixIDs), len(r.Schemes))
	}
	if calls == 0 {
		t.Fatal("no progress callbacks")
	}
	if len(r.WeightedSpeedup[0]) != 3 || len(r.HarmonicSpeedup[0]) != 3 {
		t.Fatal("metric vectors wrong length")
	}
	for _, v := range r.WeightedSpeedup[0] {
		if v <= 0 {
			t.Fatalf("non-positive weighted speedup %v", v)
		}
	}
	if !strings.Contains(r.Table(), "weighted-speedup") {
		t.Fatal("fairness table incomplete")
	}
}
