package exp

import (
	"fmt"
	"strings"

	"vantage/internal/analytic"
	"vantage/internal/plot"
)

// Fig1 tabulates the associativity CDFs FA(x) = x^R of Equation 1 for the
// paper's R values (Fig 1, linear and log scales are the same data).
type Fig1 struct {
	R []int
	X []float64
	F [][]float64 // F[i][j] = FA(X[j]; R[i])
}

// RunFig1 evaluates the Fig 1 curves on a 101-point grid.
func RunFig1() Fig1 {
	out := Fig1{R: []int{4, 8, 16, 64}}
	for j := 0; j <= 100; j++ {
		out.X = append(out.X, float64(j)/100)
	}
	for _, r := range out.R {
		row := make([]float64, len(out.X))
		for j, x := range out.X {
			row[j] = analytic.AssocCDF(x, r)
		}
		out.F = append(out.F, row)
	}
	return out
}

// CSV renders the curves.
func (f Fig1) CSV() string {
	var b strings.Builder
	b.WriteString("x")
	for _, r := range f.R {
		fmt.Fprintf(&b, ",R=%d", r)
	}
	b.WriteString("\n")
	for j, x := range f.X {
		fmt.Fprintf(&b, "%.2f", x)
		for i := range f.R {
			fmt.Fprintf(&b, ",%.6g", f.F[i][j])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table renders key points of the Fig 1 curves.
func (f Fig1) Table() string {
	var b strings.Builder
	b.WriteString("Fig 1: associativity CDF FA(x) = x^R under the uniformity assumption\n")
	b.WriteString("x      ")
	for _, r := range f.R {
		fmt.Fprintf(&b, "%12s", fmt.Sprintf("R=%d", r))
	}
	b.WriteString("\n")
	for _, x := range []float64{0.5, 0.8, 0.9, 0.95, 0.99} {
		fmt.Fprintf(&b, "%.2f   ", x)
		for _, r := range f.R {
			fmt.Fprintf(&b, "%12.3g", analytic.AssocCDF(x, r))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Plot renders the Fig 1 curves as an ASCII chart.
func (f Fig1) Plot(width, height int) string {
	c := plot.New("Fig 1: FA(x) = x^R", width, height)
	c.XLabel = "eviction priority"
	c.YLabel = "CDF"
	for i, r := range f.R {
		c.Add(plot.Series{Name: fmt.Sprintf("R=%d", r), X: f.X, Y: f.F[i]})
	}
	return c.String()
}

// Fig2 tabulates the managed-region demotion CDFs of §3.3: demoting exactly
// one line per eviction (Eq 2, Fig 2b) versus on average (Eq 3, Fig 2c),
// with a 30%-unmanaged cache.
type Fig2 struct {
	R       []int
	U       float64
	X       []float64
	OnePer  [][]float64
	Average [][]float64
}

// RunFig2 evaluates the Fig 2 curves.
func RunFig2() Fig2 {
	out := Fig2{R: []int{16, 32, 64}, U: 0.3}
	for j := 0; j <= 100; j++ {
		out.X = append(out.X, float64(j)/100)
	}
	for _, r := range out.R {
		one := make([]float64, len(out.X))
		avg := make([]float64, len(out.X))
		for j, x := range out.X {
			one[j] = analytic.ManagedCDFOnePerEviction(x, r, out.U)
			avg[j] = analytic.ManagedCDFOnAverage(x, r, out.U)
		}
		out.OnePer = append(out.OnePer, one)
		out.Average = append(out.Average, avg)
	}
	return out
}

// CSV renders the curves.
func (f Fig2) CSV() string {
	var b strings.Builder
	b.WriteString("x")
	for _, r := range f.R {
		fmt.Fprintf(&b, ",one-per-eviction-R=%d,on-average-R=%d", r, r)
	}
	b.WriteString("\n")
	for j, x := range f.X {
		fmt.Fprintf(&b, "%.2f", x)
		for i := range f.R {
			fmt.Fprintf(&b, ",%.6g,%.6g", f.OnePer[i][j], f.Average[i][j])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table renders the demotion mass below selected priorities — the contrast
// between Fig 2b and Fig 2c.
func (f Fig2) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 2: demotion-priority CDFs in the managed region (u=%.0f%%)\n", 100*f.U)
	b.WriteString("                         mass below x=0.8        mass below x=0.9\n")
	b.WriteString("R     one/evict  on-average   one/evict  on-average\n")
	for i, r := range f.R {
		at := func(row []float64, x float64) float64 {
			return row[int(x*100)]
		}
		fmt.Fprintf(&b, "%-6d%9.3f%12.4f%12.3f%12.4f\n",
			r, at(f.OnePer[i], 0.8), at(f.Average[i], 0.8), at(f.OnePer[i], 0.9), at(f.Average[i], 0.9))
	}
	b.WriteString("(demoting on average concentrates demotions near priority 1.0)\n")
	return b.String()
}

// Plot renders the Fig 2 contrast for one R as an ASCII chart.
func (f Fig2) Plot(i, width, height int) string {
	c := plot.New(fmt.Sprintf("Fig 2: managed-region demotion CDFs, R=%d, u=%.0f%%", f.R[i], 100*f.U), width, height)
	c.XLabel = "demotion priority"
	c.YLabel = "CDF"
	c.Add(plot.Series{Name: "one-per-eviction (Eq 2)", X: f.X, Y: f.OnePer[i]})
	c.Add(plot.Series{Name: "on-average (Eq 3)", X: f.X, Y: f.Average[i]})
	return c.String()
}

// Fig5 tabulates the unmanaged-region sizing rule of §4.3: u as a function
// of Amax (at fixed Pev) and of Pev (at fixed Amax), for R = 16 and 52.
type Fig5 struct {
	R      []int
	Slack  float64
	AMax   []float64
	UvsA   [][]float64 // at Pev = 1e-2
	Pev    []float64
	UvsPev [][]float64 // at Amax = 0.4
}

// RunFig5 evaluates the Fig 5 curves.
func RunFig5() Fig5 {
	out := Fig5{R: []int{16, 52}, Slack: 0.1}
	for a := 0.05; a <= 1.0001; a += 0.05 {
		out.AMax = append(out.AMax, a)
	}
	for _, p := range []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1} {
		out.Pev = append(out.Pev, p)
	}
	for _, r := range out.R {
		ua := make([]float64, len(out.AMax))
		for i, a := range out.AMax {
			ua[i] = analytic.UnmanagedFraction(1e-2, a, out.Slack, r)
		}
		out.UvsA = append(out.UvsA, ua)
		up := make([]float64, len(out.Pev))
		for i, p := range out.Pev {
			up[i] = analytic.UnmanagedFraction(p, 0.4, out.Slack, r)
		}
		out.UvsPev = append(out.UvsPev, up)
	}
	return out
}

// CSV renders both panels.
func (f Fig5) CSV() string {
	var b strings.Builder
	b.WriteString("panel,x")
	for _, r := range f.R {
		fmt.Fprintf(&b, ",R=%d", r)
	}
	b.WriteString("\n")
	for i, a := range f.AMax {
		fmt.Fprintf(&b, "u-vs-Amax,%.2f", a)
		for ri := range f.R {
			fmt.Fprintf(&b, ",%.4f", f.UvsA[ri][i])
		}
		b.WriteString("\n")
	}
	for i, p := range f.Pev {
		fmt.Fprintf(&b, "u-vs-Pev,%.0e", p)
		for ri := range f.R {
			fmt.Fprintf(&b, ",%.4f", f.UvsPev[ri][i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table renders the paper's quoted points.
func (f Fig5) Table() string {
	var b strings.Builder
	b.WriteString("Fig 5: unmanaged fraction u needed (slack=0.1)\n")
	b.WriteString("          R=16 (Pev=1e-2)  R=52 (Pev=1e-2)\n")
	for _, a := range []float64{0.2, 0.4, 0.6, 0.8} {
		fmt.Fprintf(&b, "Amax=%.1f %12.1f%% %16.1f%%\n", a,
			100*analytic.UnmanagedFraction(1e-2, a, f.Slack, 16),
			100*analytic.UnmanagedFraction(1e-2, a, f.Slack, 52))
	}
	b.WriteString("          R=16 (Amax=0.4)  R=52 (Amax=0.4)\n")
	for _, p := range []float64{1e-1, 1e-2, 1e-4} {
		fmt.Fprintf(&b, "Pev=%5.0e %11.1f%% %16.1f%%\n", p,
			100*analytic.UnmanagedFraction(p, 0.4, f.Slack, 16),
			100*analytic.UnmanagedFraction(p, 0.4, f.Slack, 52))
	}
	return b.String()
}

// Plot renders the Fig 5 u-vs-Amax panel as an ASCII chart.
func (f Fig5) Plot(width, height int) string {
	c := plot.New("Fig 5: unmanaged fraction u vs Amax (Pev=1e-2)", width, height)
	c.XLabel = "Amax"
	c.YLabel = "u"
	for i, r := range f.R {
		c.Add(plot.Series{Name: fmt.Sprintf("R=%d", r), X: f.AMax, Y: f.UvsA[i]})
	}
	return c.String()
}

// Table1 renders the paper's qualitative classification of partitioning
// schemes (Table 1).
func Table1() string {
	rows := [][]string{
		{"Scheme", "Scalable&fine", "Keeps assoc", "Efficient resize", "Strict sizes", "Repl-indep", "HW cost", "Partitions whole"},
		{"Way-partitioning", "No", "No", "Yes", "Yes", "Yes", "Low", "Yes"},
		{"Set-partitioning", "No", "Yes", "No", "Yes", "Yes", "High", "Yes"},
		{"Page coloring", "No", "Yes", "No", "Yes", "Yes", "None(SW)", "Yes"},
		{"Ins/repl-based", "Sometimes", "Sometimes", "Yes", "No", "No", "Low", "Yes"},
		{"Vantage", "Yes", "Yes", "Yes", "Yes", "Yes", "Low", "No(most)"},
	}
	var b strings.Builder
	b.WriteString("Table 1: classification of partitioning schemes\n")
	for _, row := range rows {
		for _, cell := range row {
			fmt.Fprintf(&b, "%-18s", cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table2 renders the simulated machine parameters for both configurations.
func Table2() string {
	var b strings.Builder
	b.WriteString("Table 2: simulated CMP configurations (paper-scale geometry)\n")
	b.WriteString("Cores     32 (large) / 4 (small), in-order, IPC=1 except on memory accesses\n")
	b.WriteString("L1        32 KB (512 lines), 4-way, 1-cycle latency, private\n")
	b.WriteString("L2        8 MB / 2 MB shared (131072 / 32768 lines), 12-cycle latency, partitioned\n")
	b.WriteString("Memory    200-cycle zero-load latency (bandwidth contention not modeled)\n")
	b.WriteString("UCP       UMON-DSS (64 sets) per core, Lookahead, repartition every 5 Mcycles\n")
	return b.String()
}

// StateOverheadTable renders the Fig 4 / §4.3 state accounting for the
// paper's 8 MB, 32-partition configuration and a few others.
func StateOverheadTable() string {
	var b strings.Builder
	b.WriteString("Vantage state overhead (partition-ID tag bits + 256b registers/partition)\n")
	for _, cfg := range []struct {
		lines, parts int
		label        string
	}{
		{131072, 32, "8MB, 32 partitions (paper)"},
		{32768, 4, "2MB, 4 partitions"},
		{131072, 128, "8MB, 128 partitions"},
	} {
		o := analytic.Overhead(cfg.lines, cfg.parts, 64, 64)
		fmt.Fprintf(&b, "%-30s %s\n", cfg.label, o)
	}
	return b.String()
}
