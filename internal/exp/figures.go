package exp

import (
	"vantage/internal/core"
)

// Fig6a runs the small-scale scheme comparison: Vantage-Z4/52 vs
// way-partitioning and PIPP on the SA16 baseline, all under UCP, normalized
// to unpartitioned LRU-SA16.
func Fig6a(m Machine, limit int, progress func(done, total int)) ThroughputResult {
	return RunThroughput(m, LRUBaseline(),
		[]Scheme{DefaultVantageScheme(), WayPartScheme(), PIPPScheme()},
		limit, progress)
}

// Fig6bMixIDs are the paper's selected mixes.
var Fig6bMixIDs = []string{"sftn1", "ffft4", "ssst7", "fffn7", "ffnn3", "ttnn4", "sfff6", "sssf6"}

// Fig6b runs the selected-mix comparison, including the unpartitioned
// Z4/52 zcache bar that isolates the zcache's contribution.
func Fig6b(m Machine) SelectedMixes {
	return RunSelected(m, LRUBaseline(),
		[]Scheme{LRUZCache(), WayPartScheme(), PIPPScheme(), DefaultVantageScheme()},
		Fig6bMixIDs)
}

// Fig7 runs the large-scale (32-core) comparison: the baseline and the
// way-granular schemes use a 64-way cache, Vantage keeps Z4/52.
func Fig7(m Machine, limit int, progress func(done, total int)) ThroughputResult {
	return RunThroughput(m, LRUBaseline(),
		[]Scheme{DefaultVantageScheme(), WayPartScheme(), PIPPScheme()},
		limit, progress)
}

// Fig10 runs Vantage across array designs: Z4/52 and SA64 with u=5%, Z4/16
// and SA16 with u=10% (the paper's tuning, §6.2).
func Fig10(m Machine, limit int, progress func(done, total int)) ThroughputResult {
	v5 := DefaultVantage()
	v10 := DefaultVantage()
	v10.UnmanagedFrac = 0.10
	return RunThroughput(m, LRUBaseline(), []Scheme{
		VantageScheme("Z4/52", v5, core.ModeSetpoint),
		VantageScheme("SA64", v5, core.ModeSetpoint),
		VantageScheme("Z4/16", v10, core.ModeSetpoint),
		VantageScheme("SA16", v10, core.ModeSetpoint),
	}, limit, progress)
}

// Fig11 compares RRIP baselines against Vantage-LRU and Vantage-DRRIP, all
// on Z4/52 zcaches, normalized to unpartitioned LRU (as in Fig 11). Both
// Vantage-DRRIP variants run: inline dueling and the paper's UMON-RRIP
// policy selection.
func Fig11(m Machine, limit int, progress func(done, total int)) ThroughputResult {
	return RunThroughput(m, LRUBaseline(), []Scheme{
		RRIPBaseline("SRRIP"),
		RRIPBaseline("DRRIP"),
		RRIPBaseline("TA-DRRIP"),
		DefaultVantageScheme(),
		VantageScheme("Z4/52", DefaultVantage(), core.ModeRRIP),
		VantageDRRIPUMONScheme(),
	}, limit, progress)
}

// Validation runs the §6.2 model-validation configurations: practical
// Vantage vs perfect-aperture control vs the idealized random-candidates
// array, all of which should deliver near-identical results.
func Validation(m Machine, limit int, progress func(done, total int)) ThroughputResult {
	return RunThroughput(m, LRUBaseline(), []Scheme{
		DefaultVantageScheme(),
		VantageScheme("Z4/52", DefaultVantage(), core.ModePerfectAperture),
		VantageScheme("Rand/52", DefaultVantage(), core.ModeSetpoint),
	}, limit, progress)
}
