package exp

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"vantage/internal/plot"
	"vantage/internal/sim"
	"vantage/internal/stats"
	"vantage/internal/workload"
)

// forEachMix runs fn(i) for every mix index in parallel (bounded by
// GOMAXPROCS workers). Each simulation is fully independent — every run
// builds its own controller, allocator and apps — so mix-level parallelism
// is safe and gives near-linear speedups on the big sweeps.
func forEachMix(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// SchemeCurve is one line of a Fig 6a/7-style plot: per-mix throughput
// relative to the LRU baseline, plus the sorted curve and summary.
type SchemeCurve struct {
	Scheme string
	// PerMix[i] is throughput vs baseline for Mixes[i] (unsorted).
	PerMix []float64
	// Sorted is PerMix ascending (the x-axis ordering of Fig 6a/7).
	Sorted []float64
	// Summary are descriptive statistics of PerMix.
	Summary stats.Summary
}

// ThroughputResult is the outcome of a relative-throughput experiment.
type ThroughputResult struct {
	Machine  Machine
	MixIDs   []string
	Baseline string
	Curves   []SchemeCurve
	// BaselineThroughput[i] is the absolute baseline ΣIPC of mix i.
	BaselineThroughput []float64
}

// RunThroughput evaluates schemes against the baseline over the machine's
// mixes (limit caps the mix count; <= 0 runs all 350). This is the engine
// behind Figures 6a, 7, 9a, 10 and 11. Mixes run in parallel (they are
// independent simulations). Each mix's app streams are recorded once and
// replayed by the baseline and every scheme — identical references without
// regenerating them per scheme — with the recording scoped to the mix's
// work item so memory stays bounded by the number of in-flight mixes.
func RunThroughput(m Machine, baseline Scheme, schemes []Scheme, limit int, progress func(done, total int)) ThroughputResult {
	mixes := m.Mixes(limit)
	res := ThroughputResult{
		Machine:            m,
		Baseline:           baseline.Name,
		BaselineThroughput: make([]float64, len(mixes)),
	}
	for _, mix := range mixes {
		res.MixIDs = append(res.MixIDs, mix.ID)
	}
	curves := make([]SchemeCurve, len(schemes))
	for si, sch := range schemes {
		curves[si] = SchemeCurve{Scheme: sch.Name, PerMix: make([]float64, len(mixes))}
	}
	total := len(mixes) * (len(schemes) + 1)
	var done atomic.Int64
	var progMu sync.Mutex
	tick := func() {
		if progress == nil {
			done.Add(1)
			return
		}
		// Increment under the same lock as the callback: a worker that
		// incremented first but locked second would otherwise deliver its
		// higher count before the earlier one, making progress jump
		// backwards.
		progMu.Lock()
		progress(int(done.Add(1)), total)
		progMu.Unlock()
	}
	forEachMix(len(mixes), func(i int) {
		runs := len(schemes) + 1
		rec := m.Record(mixes[i])
		// Preferred path: memoize the post-L1 segment stream over the raw
		// recording, so the private L1s run once per (mix, app) and every
		// scheme replays the shared filtered stream (bit-identical results;
		// see sim.MissRecorder). Falls back to raw replay when the machine
		// has no L1s, and to live generation when recording is disabled.
		var missSets [][]*sim.MissReplay
		var replayed []workload.Mix
		if recs := m.RecordMisses(rec); recs != nil {
			missSets = MissSets(recs, runs)
		} else if rec != nil {
			replayed = rec.ReplayAll(runs)
		} else {
			replayed = make([]workload.Mix, runs)
			for ri := range replayed {
				replayed[ri] = m.ReplayOrRemake(nil, mixes[i].ID)
			}
		}
		// Fan the baseline and every scheme out as goroutines sharing the
		// windowed recording: each chunk is generated once (by whichever
		// run gets there first) and consumed by all runs while it is still
		// cache-hot, then dropped. The runs are independent simulations, so
		// concurrency cannot change their results.
		thr := make([]float64, runs)
		var wg sync.WaitGroup
		for ri := 0; ri < runs; ri++ {
			wg.Add(1)
			go func(ri int) {
				defer wg.Done()
				sch := baseline
				if ri > 0 {
					sch = schemes[ri-1]
				}
				if missSets != nil {
					thr[ri] = m.RunMixMiss(mixes[i].ID, missSets[ri], sch).Throughput
				} else {
					thr[ri] = m.RunMix(replayed[ri], sch).Throughput
				}
				tick()
			}(ri)
		}
		wg.Wait()
		res.BaselineThroughput[i] = thr[0]
		base := thr[0]
		if base <= 0 {
			base = 1e-9
		}
		for si := range schemes {
			curves[si].PerMix[i] = thr[si+1] / base
		}
	})
	for si := range curves {
		curves[si].Sorted = append([]float64(nil), curves[si].PerMix...)
		sort.Float64s(curves[si].Sorted)
		curves[si].Summary = stats.Summarize(curves[si].PerMix)
	}
	res.Curves = curves
	return res
}

// Table renders the sorted curves at decile points plus summaries, the
// textual equivalent of Fig 6a/7.
func (r ThroughputResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Throughput vs %s on %s (%d mixes)\n", r.Baseline, r.Machine.Name, len(r.MixIDs))
	fmt.Fprintf(&b, "%-24s", "scheme\\percentile")
	for p := 0; p <= 100; p += 10 {
		fmt.Fprintf(&b, "%7s", fmt.Sprintf("p%d", p))
	}
	fmt.Fprintf(&b, "%8s%9s\n", "gmean", "improved")
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "%-24s", c.Scheme)
		n := len(c.Sorted)
		for p := 0; p <= 100; p += 10 {
			i := p * (n - 1) / 100
			fmt.Fprintf(&b, "%7.3f", c.Sorted[i])
		}
		fmt.Fprintf(&b, "%8.3f%8.0f%%\n", c.Summary.GeoMean, 100*c.Summary.FracAboveOne)
	}
	return b.String()
}

// CSV renders the per-mix relative throughputs, one row per mix.
func (r ThroughputResult) CSV() string {
	var b strings.Builder
	b.WriteString("mix")
	for _, c := range r.Curves {
		b.WriteString(",")
		b.WriteString(c.Scheme)
	}
	b.WriteString(",baseline_ipc\n")
	for i, id := range r.MixIDs {
		b.WriteString(id)
		for _, c := range r.Curves {
			fmt.Fprintf(&b, ",%.5f", c.PerMix[i])
		}
		fmt.Fprintf(&b, ",%.5f\n", r.BaselineThroughput[i])
	}
	return b.String()
}

// Plot renders the sorted curves as an ASCII chart (the visual shape of
// Fig 6a / Fig 7: mixes sorted by improvement on the x-axis, relative
// throughput on the y-axis).
func (r ThroughputResult) Plot(width, height int) string {
	c := plot.New(fmt.Sprintf("Throughput vs %s, sorted by improvement (%s)", r.Baseline, r.Machine.Name), width, height)
	c.XLabel = "workload rank"
	c.YLabel = "throughput vs baseline"
	for _, cu := range r.Curves {
		c.AddYs(cu.Scheme, cu.Sorted)
	}
	return c.String()
}

// Curve returns the named scheme's curve, or nil.
func (r ThroughputResult) Curve(name string) *SchemeCurve {
	for i := range r.Curves {
		if r.Curves[i].Scheme == name {
			return &r.Curves[i]
		}
	}
	return nil
}

// SelectedMixes is Fig 6b: absolute throughput improvements on a hand-picked
// set of mixes for a list of schemes.
type SelectedMixes struct {
	Machine Machine
	MixIDs  []string
	Schemes []string
	// Improv[s][m] is percent throughput improvement of scheme s on mix m.
	Improv [][]float64
}

// RunSelected runs the Fig 6b experiment: the named mixes (paper: sftn1,
// ffft4, ssst7, fffn7, ffnn3, ttnn4, sfff6, sssf6) across schemes. Every
// (mix, scheme) run is an independent simulation, so they all run in
// parallel; each replays its mix's shared recording from the start, so every
// scheme sees identical app streams without regenerating them (replay
// cursors are independent and extend the recording safely under
// concurrency).
func RunSelected(m Machine, baseline Scheme, schemes []Scheme, mixIDs []string) SelectedMixes {
	out := SelectedMixes{Machine: m, MixIDs: mixIDs}
	for _, sch := range schemes {
		out.Schemes = append(out.Schemes, sch.Name)
	}
	out.Improv = make([][]float64, len(schemes))
	for si := range schemes {
		out.Improv[si] = make([]float64, len(mixIDs))
	}
	// One work unit per (mix, baseline-or-scheme) pair; ratios are taken
	// after the barrier, once every absolute throughput is in. Each mix's
	// runs share one windowed recording, with the cursor set built up front
	// (chunks are dropped once every run of the mix has consumed them).
	perMix := len(schemes) + 1
	missSets := make([][][]*sim.MissReplay, len(mixIDs))
	replayed := make([][]workload.Mix, len(mixIDs))
	for mi, id := range mixIDs {
		mix, err := m.Mix(id)
		if err != nil {
			panic(fmt.Sprintf("exp: unknown mix %q: %v", id, err))
		}
		rec := m.Record(mix)
		if recs := m.RecordMisses(rec); recs != nil {
			missSets[mi] = MissSets(recs, perMix)
		} else if rec != nil {
			replayed[mi] = rec.ReplayAll(perMix)
		} else {
			replayed[mi] = make([]workload.Mix, perMix)
			for si := range replayed[mi] {
				replayed[mi][si] = m.ReplayOrRemake(nil, id)
			}
		}
	}
	base := make([]float64, len(mixIDs))
	forEachMix(len(mixIDs)*perMix, func(i int) {
		mi, si := i/perMix, i%perMix
		sch := baseline
		if si > 0 {
			sch = schemes[si-1]
		}
		var thr float64
		if missSets[mi] != nil {
			thr = m.RunMixMiss(mixIDs[mi], missSets[mi][si], sch).Throughput
		} else {
			thr = m.RunMix(replayed[mi][si], sch).Throughput
		}
		if si == 0 {
			base[mi] = thr
		} else {
			out.Improv[si-1][mi] = thr
		}
	})
	for si := range schemes {
		for mi := range mixIDs {
			out.Improv[si][mi] = (out.Improv[si][mi]/base[mi] - 1) * 100
		}
	}
	return out
}

// Table renders the Fig 6b bars as a text table.
func (s SelectedMixes) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Throughput improvement vs LRU (%%) on selected mixes (%s)\n", s.Machine.Name)
	fmt.Fprintf(&b, "%-20s", "scheme\\mix")
	for _, id := range s.MixIDs {
		fmt.Fprintf(&b, "%9s", id)
	}
	b.WriteString("\n")
	for si, name := range s.Schemes {
		fmt.Fprintf(&b, "%-20s", name)
		for mi := range s.MixIDs {
			fmt.Fprintf(&b, "%9.1f", s.Improv[si][mi])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ClassBreakdown aggregates a scheme's per-mix results by workload class
// composition: for each count of a category present in the class (e.g.
// "mixes containing at least one cache-fitting app"), the geometric mean of
// the relative throughput. This is the analysis view behind statements like
// "Vantage wins mostly on fitting-heavy mixes".
func (r ThroughputResult) ClassBreakdown(scheme string) map[byte]float64 {
	c := r.Curve(scheme)
	if c == nil {
		return nil
	}
	sums := map[byte]float64{}
	counts := map[byte]int{}
	for i, id := range r.MixIDs {
		cls, _, err := workload.ParseMixID(id)
		if err != nil {
			continue
		}
		seen := map[byte]bool{}
		for _, cat := range cls {
			seen[cat.Letter()] = true
		}
		for letter := range seen {
			if c.PerMix[i] > 0 {
				sums[letter] += math.Log(c.PerMix[i])
				counts[letter]++
			}
		}
	}
	out := map[byte]float64{}
	for letter, s := range sums {
		out[letter] = math.Exp(s / float64(counts[letter]))
	}
	return out
}

// BreakdownTable renders per-category geometric means for every scheme.
func (r ThroughputResult) BreakdownTable() string {
	var b strings.Builder
	b.WriteString("Geometric-mean throughput vs baseline, by category present in the mix\n")
	b.WriteString("scheme                      has-n   has-f   has-t   has-s\n")
	for _, c := range r.Curves {
		bd := r.ClassBreakdown(c.Scheme)
		fmt.Fprintf(&b, "%-26s", c.Scheme)
		for _, letter := range []byte{'n', 'f', 't', 's'} {
			fmt.Fprintf(&b, "%8.3f", bd[letter])
		}
		b.WriteString("\n")
	}
	return b.String()
}
