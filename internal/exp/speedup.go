package exp

import (
	"fmt"
	"math"
	"strings"

	"vantage/internal/cache"
	"vantage/internal/ctrl"
	"vantage/internal/repl"
	"vantage/internal/sim"
	"vantage/internal/workload"
)

// FairnessResult reports the fairness-oriented metrics the paper's §5
// mentions alongside throughput: weighted speedup (Σ IPC_shared/IPC_alone)
// and the harmonic mean of weighted speedups, both normalized against the
// same metrics under the unpartitioned LRU baseline. The paper states these
// "do not offer additional insights" over throughput for UCP; this
// experiment lets that claim be checked.
type FairnessResult struct {
	Machine Machine
	MixIDs  []string
	Schemes []string
	// WeightedSpeedup[s][m] and HarmonicSpeedup[s][m] are the scheme's
	// metrics normalized to the baseline's on mix m.
	WeightedSpeedup [][]float64
	HarmonicSpeedup [][]float64
}

// soloIPC measures each app's IPC with the whole L2 to itself.
func soloIPC(m Machine, apps []workload.App) []float64 {
	out := make([]float64, len(apps))
	for i, app := range apps {
		arr := cache.NewZCache(m.L2Lines, 4, 16, m.Seed^0x5010)
		l2 := ctrl.NewUnpartitioned(arr, repl.NewLRUTimestamp(m.L2Lines), 1)
		res := sim.Run(sim.Config{
			Apps:        []workload.App{app},
			L2:          l2,
			L1Lines:     m.L1Lines,
			L1Ways:      m.L1Ways,
			InstrLimit:  m.InstrLimit,
			WarmupInstr: m.WarmupInstr,
		})
		out[i] = res.Cores[0].IPC
	}
	return out
}

// speedupMetrics computes (weighted, harmonic) speedups of a run against
// per-app solo IPCs.
func speedupMetrics(cores []sim.CoreStats, solo []float64) (ws, hs float64) {
	n := 0
	invSum := 0.0
	for i, c := range cores {
		if solo[i] <= 0 {
			continue
		}
		s := c.IPC / solo[i]
		ws += s
		if s > 0 {
			invSum += 1 / s
		}
		n++
	}
	if n == 0 {
		return 0, 0
	}
	hs = float64(n) / invSum
	return ws, hs
}

// RunFairness evaluates schemes on the fairness metrics over limit mixes.
// Solo baselines are measured once per mix; mixes whose apps never finish
// are skipped (none in practice).
func RunFairness(m Machine, baseline Scheme, schemes []Scheme, limit int, progress func(done, total int)) FairnessResult {
	mixes := m.Mixes(limit)
	out := FairnessResult{Machine: m}
	for _, sch := range schemes {
		out.Schemes = append(out.Schemes, sch.Name)
	}
	out.WeightedSpeedup = make([][]float64, len(schemes))
	out.HarmonicSpeedup = make([][]float64, len(schemes))
	total := len(mixes) * (1 + 1 + len(schemes)) // solo counts as one unit
	done := 0
	tick := func() {
		done++
		if progress != nil {
			progress(done, total)
		}
	}
	for _, mix := range mixes {
		out.MixIDs = append(out.MixIDs, mix.ID)
		solo := soloIPC(m, mix.Apps)
		tick()
		baseRes := m.RunMix(mix, baseline)
		baseWS, baseHS := speedupMetrics(baseRes.Cores, solo)
		tick()
		for si, sch := range schemes {
			res := m.RunMix(mix, sch)
			ws, hs := speedupMetrics(res.Cores, solo)
			if baseWS > 0 {
				ws /= baseWS
			}
			if baseHS > 0 {
				hs /= baseHS
			}
			out.WeightedSpeedup[si] = append(out.WeightedSpeedup[si], ws)
			out.HarmonicSpeedup[si] = append(out.HarmonicSpeedup[si], hs)
			tick()
		}
	}
	return out
}

// geoMean returns the geometric mean of positive samples.
func geoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
		}
	}
	return math.Exp(s / float64(len(xs)))
}

// Table renders geometric means of both metrics per scheme.
func (r FairnessResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fairness metrics vs LRU baseline (%s, %d mixes)\n", r.Machine.Name, len(r.MixIDs))
	b.WriteString("scheme                    weighted-speedup   harmonic-speedup\n")
	for si, name := range r.Schemes {
		fmt.Fprintf(&b, "%-28s%14.3f%19.3f\n", name,
			geoMean(r.WeightedSpeedup[si]), geoMean(r.HarmonicSpeedup[si]))
	}
	return b.String()
}
