package exp

import (
	"fmt"
	"hash/fnv"
	"testing"

	"vantage/internal/sim"
)

// These tests pin the simulator kernel's outputs bit-for-bit: the
// fingerprints below were captured from the pre-optimization kernel (PR 3's
// seed state), and every optimization of the per-access hot path must leave
// them exactly unchanged. A mismatch here means a behavioral change in the
// simulated machine — a correctness bug in a perf PR, however plausible the
// new numbers look. If a change is *intended* to alter simulated outcomes
// (e.g. a modeling fix), recapture deliberately: run the test, copy the "got"
// fingerprints into the table, and say so in the PR description.
//
// The fingerprint encodes Repartitions, WeightedCycles, the per-core sums of
// every integer counter, and an FNV-1a hash over the full per-core counter
// stream, so any drift in any core's instructions, cycles, or hit/miss counts
// flips it.

// goldenFingerprint compresses a sim.Result into a deterministic string.
func goldenFingerprint(r sim.Result) string {
	h := fnv.New64a()
	var sumInstr, sumCycles, sumL1M, sumL2A, sumL2M uint64
	for _, c := range r.Cores {
		for _, v := range []uint64{c.Instructions, c.Cycles, c.L1Accesses, c.L1Misses, c.L2Accesses, c.L2Misses} {
			var b [8]byte
			for i := range b {
				b[i] = byte(v >> (8 * i))
			}
			h.Write(b[:])
		}
		sumInstr += c.Instructions
		sumCycles += c.Cycles
		sumL1M += c.L1Misses
		sumL2A += c.L2Accesses
		sumL2M += c.L2Misses
	}
	return fmt.Sprintf("rep=%d wc=%d instr=%d cycles=%d l1m=%d l2a=%d l2m=%d fnv=%016x",
		r.Repartitions, r.WeightedCycles, sumInstr, sumCycles, sumL1M, sumL2A, sumL2M, h.Sum64())
}

// goldenSmall are the 4-core ScaleUnit fingerprints: the first three mixes of
// the machine's deterministic mix order under each scheme family (LRU
// baseline, Vantage, way-partitioning, PIPP, and Vantage-DRRIP with the
// UMON-RRIP allocator).
var goldenSmall = map[string]string{
	"4core/LRU-SA/nnft1":                   "rep=0 wc=6295634 instr=600022 cycles=5568976 l1m=29414 l2a=29414 l2m=23227 fnv=22ecda1a58922ce9",
	"4core/LRU-SA/nfts1":                   "rep=0 wc=10852534 instr=600014 cycles=10499650 l1m=52876 l2a=52876 l2m=46590 fnv=493e23d60fd3f55a",
	"4core/LRU-SA/nfff1":                   "rep=0 wc=7079238 instr=600016 cycles=9488595 l1m=57489 l2a=57489 l2m=41281 fnv=6d09658ccde07b06",
	"4core/Vantage-Z4/52/nnft1":            "rep=53 wc=5349234 instr=600022 cycles=5080576 l1m=29414 l2a=29414 l2m=20785 fnv=63f556132d84b482",
	"4core/Vantage-Z4/52/nfts1":            "rep=108 wc=10852534 instr=600014 cycles=9460850 l1m=52876 l2a=52876 l2m=41396 fnv=2807bf70b32cd0b2",
	"4core/Vantage-Z4/52/nfff1":            "rep=79 wc=7926638 instr=600016 cycles=9467995 l1m=57489 l2a=57489 l2m=41178 fnv=3a9fd5fbda07b042",
	"4core/WayPart-SA/nnft1":               "rep=58 wc=5841834 instr=600022 cycles=5325176 l1m=29414 l2a=29414 l2m=22008 fnv=0c578a275a47096e",
	"4core/WayPart-SA/nfts1":               "rep=108 wc=10852534 instr=600014 cycles=9643850 l1m=52876 l2a=52876 l2m=42311 fnv=94797f9f151783b1",
	"4core/WayPart-SA/nfff1":               "rep=79 wc=7948238 instr=600016 cycles=9813795 l1m=57489 l2a=57489 l2m=42907 fnv=a8207e9e09516270",
	"4core/PIPP-SA/nnft1":                  "rep=63 wc=6322834 instr=600022 cycles=4613976 l1m=29414 l2a=29414 l2m=18452 fnv=65a383ce7a8db0b7",
	"4core/PIPP-SA/nfts1":                  "rep=108 wc=10852534 instr=600014 cycles=10008650 l1m=52876 l2a=52876 l2m=44135 fnv=dddca134e0430c4b",
	"4core/PIPP-SA/nfff1":                  "rep=70 wc=7054438 instr=600016 cycles=9543795 l1m=57489 l2a=57489 l2m=41557 fnv=a501539183f34a7f",
	"4core/Vantage-DRRIP-UMON-Z4/52/nnft1": "rep=73 wc=7355234 instr=600022 cycles=4653576 l1m=29414 l2a=29414 l2m=18650 fnv=a4ba7f9f50f8919e",
	"4core/Vantage-DRRIP-UMON-Z4/52/nfts1": "rep=108 wc=10852534 instr=600014 cycles=9872250 l1m=52876 l2a=52876 l2m=43453 fnv=14d61103d33189e5",
	"4core/Vantage-DRRIP-UMON-Z4/52/nfff1": "rep=78 wc=7888238 instr=600016 cycles=9343395 l1m=57489 l2a=57489 l2m=40555 fnv=ffa48725ac38fc64",
}

// goldenSpecial are single-run fingerprints covering kernel paths the small
// matrix misses: the 32-core machine (heap scheduler at scale), bank/memory
// contention, and the no-L1 configuration.
var goldenSpecial = map[string]string{
	"32core/LRU-SA/nnft1":           "rep=0 wc=8335479 instr=1920211 cycles=21338038 l1m=108457 l2a=108457 l2m=91124 fnv=4b480822328ef931",
	"32core/Vantage-Z4/52/nnft1":    "rep=167 wc=8384879 instr=1920211 cycles=20823638 l1m=108457 l2a=108457 l2m=88552 fnv=ada74367c9d20380",
	"4core-contended/Vantage/nnft1": "rep=53 wc=5356213 instr=600022 cycles=5090534 l1m=29414 l2a=29414 l2m=20800 fnv=a4e4fca69c17b115",
	"4core-noL1/LRU/nnft1":          "rep=0 wc=6702099 instr=600022 cycles=6301183 l1m=108251 l2a=108251 l2m=22552 fnv=086ca927d4e182cd",
}

func goldenSchemes() []Scheme {
	return []Scheme{
		LRUBaseline(),
		DefaultVantageScheme(),
		WayPartScheme(),
		PIPPScheme(),
		VantageDRRIPUMONScheme(),
	}
}

func checkGolden(t *testing.T, table map[string]string, name string, res sim.Result) {
	t.Helper()
	got := goldenFingerprint(res)
	want, ok := table[name]
	if !ok {
		t.Errorf("missing golden entry:\n\t%q: %q,", name, got)
		return
	}
	if got != want {
		t.Errorf("%s: simulated outcome drifted from the pre-optimization kernel\n got %q\nwant %q", name, got, want)
	}
}

// TestGoldenDeterminismSmall pins the 4-core machine across all scheme
// families.
func TestGoldenDeterminismSmall(t *testing.T) {
	m := SmallCMP(ScaleUnit)
	for _, sch := range goldenSchemes() {
		mixes := m.Mixes(3)
		for _, mix := range mixes {
			name := fmt.Sprintf("4core/%s/%s", sch.Name, mix.ID)
			checkGolden(t, goldenSmall, name, m.RunMix(mix, sch))
		}
	}
}

// TestGoldenDeterminismSpecial pins the 32-core machine, the contention
// model, and the no-L1 configuration.
func TestGoldenDeterminismSpecial(t *testing.T) {
	m32 := LargeCMP(ScaleUnit)
	for _, sch := range []Scheme{LRUBaseline(), DefaultVantageScheme()} {
		mix := m32.Mixes(1)[0]
		checkGolden(t, goldenSpecial, "32core/"+sch.Name+"/"+mix.ID, m32.RunMix(mix, sch))
	}

	mc := SmallCMP(ScaleUnit).WithContention()
	mix := mc.Mixes(1)[0]
	checkGolden(t, goldenSpecial, "4core-contended/Vantage/"+mix.ID, mc.RunMix(mix, DefaultVantageScheme()))

	mn := SmallCMP(ScaleUnit)
	mn.L1Lines = 0
	mix = mn.Mixes(1)[0]
	checkGolden(t, goldenSpecial, "4core-noL1/LRU/"+mix.ID, mn.RunMix(mix, LRUBaseline()))
}
