package exp

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// ReportOptions configures WriteReport.
type ReportOptions struct {
	// Scale selects the machine sizes.
	Scale Scale
	// Mixes caps each sweep's workload count (0 = the full 350).
	Mixes int
	// Progress, if set, receives coarse stage updates.
	Progress func(stage string)
	// Tweak, if set, adjusts each machine before use (tests shrink the
	// instruction budgets this way).
	Tweak func(Machine) Machine
}

// WriteReport runs the complete reproduction — every figure and table plus
// the repository's own validation experiments — and writes REPORT.md with
// all tables and charts, plus per-experiment CSVs, into dir. It is the
// one-command artifact: `vantage-sim -config all -csv out/`.
func WriteReport(dir string, opt ReportOptions) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("exp: creating report dir: %w", err)
	}
	var md strings.Builder
	stage := func(s string) {
		if opt.Progress != nil {
			opt.Progress(s)
		}
	}
	writeCSV := func(name, data string) error {
		return os.WriteFile(filepath.Join(dir, name), []byte(data), 0o644)
	}
	section := func(title, body string) {
		fmt.Fprintf(&md, "## %s\n\n```\n%s```\n\n", title, body)
	}

	start := time.Now()
	small := SmallCMP(opt.Scale)
	large := LargeCMP(opt.Scale)
	if opt.Tweak != nil {
		small = opt.Tweak(small)
		large = opt.Tweak(large)
	}
	fmt.Fprintf(&md, "# Vantage reproduction report\n\n")
	fmt.Fprintf(&md, "Machines: %s; %s. Mix cap: %d.\n\n", small, large, opt.Mixes)

	stage("analytical figures")
	f1 := RunFig1()
	section("Fig 1 — associativity CDFs", f1.Table()+"\n"+f1.Plot(64, 14))
	if err := writeCSV("fig1.csv", f1.CSV()); err != nil {
		return err
	}
	f2 := RunFig2()
	section("Fig 2 — managed-region demotion CDFs", f2.Table()+"\n"+f2.Plot(0, 64, 14))
	if err := writeCSV("fig2.csv", f2.CSV()); err != nil {
		return err
	}
	f5 := RunFig5()
	section("Fig 5 — unmanaged-region sizing", f5.Table()+"\n"+f5.Plot(64, 14))
	if err := writeCSV("fig5.csv", f5.CSV()); err != nil {
		return err
	}
	section("Table 1 — scheme classification", Table1())
	section("Table 2 — machine parameters", Table2())
	section("State overhead (Fig 4)", StateOverheadTable())

	stage("fig6a")
	r6a := Fig6a(small, opt.Mixes, nil)
	section("Fig 6a — 4-core scheme comparison", r6a.Table()+"\n"+r6a.Plot(70, 16))
	if err := writeCSV("fig6a.csv", r6a.CSV()); err != nil {
		return err
	}
	stage("fig6b")
	r6b := Fig6b(small)
	section("Fig 6b — selected mixes", r6b.Table())

	stage("fig7")
	r7 := Fig7(large, opt.Mixes, nil)
	section("Fig 7 — 32-core scalability", r7.Table()+"\n"+r7.Plot(70, 16))
	if err := writeCSV("fig7.csv", r7.CSV()); err != nil {
		return err
	}

	stage("fig8")
	r8 := RunFig8(small, "ttnn4", 0)
	body := r8.Table()
	for i := range r8.Schemes {
		body += "\n" + r8.Plot(i, 70, 12)
	}
	section("Fig 8 — size tracking", body)
	if err := writeCSV("fig8.csv", r8.CSV()); err != nil {
		return err
	}

	stage("fig9")
	r9 := RunFig9(small, nil, opt.Mixes, nil)
	section("Fig 9 — unmanaged-region sensitivity", r9.Table())
	if err := writeCSV("fig9.csv", r9.CSV()); err != nil {
		return err
	}

	stage("fig10")
	r10 := Fig10(small, opt.Mixes, nil)
	section("Fig 10 — cache array designs", r10.Table())
	if err := writeCSV("fig10.csv", r10.CSV()); err != nil {
		return err
	}

	stage("fig11")
	r11 := Fig11(small, opt.Mixes, nil)
	section("Fig 11 — replacement policies", r11.Table())
	if err := writeCSV("fig11.csv", r11.CSV()); err != nil {
		return err
	}

	stage("table3")
	t3 := RunTable3(small, 2, nil)
	section("Table 3 — workload classification",
		t3.Table()+fmt.Sprintf("\nclassification accuracy: %.0f%%\n", 100*t3.Accuracy()))

	stage("validation")
	val := Validation(small, opt.Mixes, nil)
	section("§6.2 validation — model configurations", val.Table())

	stage("associativity")
	as := RunAssociativity(nil, small.L2Lines, 8000, small.Seed)
	section("Array associativity vs FA(x)=x^R", as.Table())

	stage("transient")
	tr := RunTransient(small.L2Lines, small.Seed)
	section("Resize transient (Fig 8 adaptation claim)", tr.Table())

	fmt.Fprintf(&md, "---\ngenerated in %.0fs\n", time.Since(start).Seconds())
	return os.WriteFile(filepath.Join(dir, "REPORT.md"), []byte(md.String()), 0o644)
}
