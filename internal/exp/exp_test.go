package exp

import (
	"os"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"vantage/internal/workload"
)

func TestMachineConfigs(t *testing.T) {
	for _, s := range []Scale{ScaleUnit, ScaleSmall, ScaleFull} {
		small := SmallCMP(s)
		large := LargeCMP(s)
		if small.Cores != 4 || large.Cores != 32 {
			t.Fatal("core counts wrong")
		}
		if small.BaselineWays != 16 || large.BaselineWays != 64 {
			t.Fatal("baseline ways wrong")
		}
		if small.String() == "" {
			t.Fatal("empty machine string")
		}
	}
}

func TestMachineMixesLimit(t *testing.T) {
	m := SmallCMP(ScaleUnit)
	all := m.Mixes(0)
	if len(all) != 350 {
		t.Fatalf("full mix set has %d mixes", len(all))
	}
	limited := m.Mixes(35)
	if len(limited) != 35 {
		t.Fatalf("limited mix set has %d", len(limited))
	}
	// Class coverage: the 35 limited mixes must cover all 35 classes.
	seen := map[string]bool{}
	for _, mix := range limited {
		seen[mix.Class.String()] = true
	}
	if len(seen) != 35 {
		t.Fatalf("limited mixes cover %d classes, want 35", len(seen))
	}
}

func TestSchemeBuilders(t *testing.T) {
	m := SmallCMP(ScaleUnit)
	schemes := []Scheme{
		LRUBaseline(), LRUZCache(),
		RRIPBaseline("SRRIP"), RRIPBaseline("DRRIP"), RRIPBaseline("TA-DRRIP"),
		WayPartScheme(), PIPPScheme(), DefaultVantageScheme(),
	}
	for _, sch := range schemes {
		l2 := sch.Build(m, 1)
		if l2 == nil || l2.Name() == "" {
			t.Fatalf("scheme %s built nothing", sch.Name)
		}
		// Exercise a few accesses.
		for i := 0; i < 100; i++ {
			l2.Access(uint64(i), i%m.Cores)
		}
	}
}

func TestRRIPBaselinePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown variant did not panic")
		}
	}()
	RRIPBaseline("XRRIP").Build(SmallCMP(ScaleUnit), 1)
}

func TestVantageSchemePanicsOnUnknownArray(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown array did not panic")
		}
	}()
	VantageScheme("Z9/99", DefaultVantage(), 0).Build(SmallCMP(ScaleUnit), 1)
}

func TestFig1(t *testing.T) {
	f := RunFig1()
	if len(f.R) != 4 || len(f.X) != 101 {
		t.Fatal("fig1 shape wrong")
	}
	if f.F[3][80] > 1e-5 { // R=64 at x=0.8
		t.Fatalf("FA(0.8;64) = %v", f.F[3][80])
	}
	if !strings.Contains(f.CSV(), "R=64") || !strings.Contains(f.Table(), "R=64") {
		t.Fatal("fig1 renderers incomplete")
	}
}

func TestFig2(t *testing.T) {
	f := RunFig2()
	// Demoting on average must dominate one-per-eviction at every priority
	// (fewer demotions of protected lines).
	for i := range f.R {
		for j := range f.X {
			if f.Average[i][j] > f.OnePer[i][j]+1e-9 {
				t.Fatalf("on-average mass above one-per-eviction at R=%d x=%v", f.R[i], f.X[j])
			}
		}
	}
	if !strings.Contains(f.Table(), "Fig 2") || f.CSV() == "" {
		t.Fatal("fig2 renderers incomplete")
	}
}

func TestFig5(t *testing.T) {
	f := RunFig5()
	// u decreases with Amax and increases as Pev shrinks.
	for ri := range f.R {
		for i := 1; i < len(f.AMax); i++ {
			if f.UvsA[ri][i] > f.UvsA[ri][i-1]+1e-9 {
				t.Fatal("u not decreasing with Amax")
			}
		}
		for i := 1; i < len(f.Pev); i++ {
			if f.UvsPev[ri][i] > f.UvsPev[ri][i-1]+1e-9 {
				t.Fatal("u not decreasing with growing Pev")
			}
		}
	}
	if !strings.Contains(f.Table(), "Fig 5") || f.CSV() == "" {
		t.Fatal("fig5 renderers incomplete")
	}
}

func TestStaticTables(t *testing.T) {
	if !strings.Contains(Table1(), "Vantage") {
		t.Fatal("table1 incomplete")
	}
	if !strings.Contains(Table2(), "UCP") {
		t.Fatal("table2 incomplete")
	}
	if !strings.Contains(StateOverheadTable(), "32 partitions") {
		t.Fatal("state overhead table incomplete")
	}
}

func TestRunThroughputSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	m := SmallCMP(ScaleUnit)
	m.InstrLimit, m.WarmupInstr = 40_000, 20_000
	calls := 0
	res := RunThroughput(m, LRUBaseline(), []Scheme{DefaultVantageScheme()}, 6,
		func(done, total int) { calls++ })
	if len(res.MixIDs) != 6 || len(res.Curves) != 1 {
		t.Fatalf("shape: %d mixes, %d curves", len(res.MixIDs), len(res.Curves))
	}
	if calls != 12 {
		t.Fatalf("progress called %d times, want 12", calls)
	}
	c := res.Curves[0]
	if len(c.Sorted) != 6 || c.Summary.N != 6 {
		t.Fatal("curve shape wrong")
	}
	for i := 1; i < len(c.Sorted); i++ {
		if c.Sorted[i] < c.Sorted[i-1] {
			t.Fatal("sorted curve not sorted")
		}
	}
	if res.Curve("Vantage-Z4/52") == nil || res.Curve("nope") != nil {
		t.Fatal("Curve lookup broken")
	}
	if !strings.Contains(res.Table(), "Vantage-Z4/52") {
		t.Fatal("table missing scheme")
	}
	if !strings.Contains(res.CSV(), "mix,") {
		t.Fatal("csv missing header")
	}
}

func TestRunSelectedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	m := SmallCMP(ScaleUnit)
	m.InstrLimit, m.WarmupInstr = 30_000, 15_000
	sel := RunSelected(m, LRUBaseline(), []Scheme{LRUZCache()}, []string{"sftn1", "ffft4"})
	if len(sel.MixIDs) != 2 || len(sel.Improv) != 1 || len(sel.Improv[0]) != 2 {
		t.Fatal("selected shape wrong")
	}
	if !strings.Contains(sel.Table(), "sftn1") {
		t.Fatal("selected table incomplete")
	}
}

func TestFig8Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	m := SmallCMP(ScaleUnit)
	m.InstrLimit, m.WarmupInstr = 60_000, 20_000
	r := RunFig8(m, "ttnn4", 0)
	if len(r.Schemes) != 3 {
		t.Fatalf("fig8 schemes: %v", r.Schemes)
	}
	for i, name := range r.Schemes {
		if r.Target[i].Len() == 0 {
			t.Fatalf("%s recorded no repartitions", name)
		}
	}
	// Vantage must expose a heat map; way-partitioning's LRU policy does not
	// implement the observer, PIPP neither.
	vi := -1
	for i, name := range r.Schemes {
		if name == "Vantage-Z4/52" {
			vi = i
		}
	}
	if vi < 0 || r.Heatmaps[vi] == nil {
		t.Fatal("Vantage heat map missing")
	}
	if !strings.Contains(r.Table(), "size tracking") || r.CSV() == "" {
		t.Fatal("fig8 renderers incomplete")
	}
}

func TestFig9Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	m := SmallCMP(ScaleUnit)
	m.InstrLimit, m.WarmupInstr = 40_000, 20_000
	r := RunFig9(m, []float64{0.05, 0.30}, 4, nil)
	if len(r.U) != 2 || len(r.Throughput) != 2 || len(r.ForcedFrac) != 2 {
		t.Fatal("fig9 shape wrong")
	}
	// A larger unmanaged region must not increase forced evictions.
	med := func(xs []float64) float64 { return xs[len(xs)/2] }
	if med(r.ForcedFrac[1]) > med(r.ForcedFrac[0])+1e-9 {
		t.Fatalf("forced evictions grew with u: %v vs %v",
			med(r.ForcedFrac[1]), med(r.ForcedFrac[0]))
	}
	if r.PevWorstCase[0] <= r.PevWorstCase[1] {
		t.Fatal("worst-case Pev ordering wrong")
	}
	if !strings.Contains(r.Table(), "Fig 9") || r.CSV() == "" {
		t.Fatal("fig9 renderers incomplete")
	}
}

func TestTable3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	m := SmallCMP(ScaleUnit)
	m.InstrLimit, m.WarmupInstr = 60_000, 30_000
	r := RunTable3(m, 1, nil)
	if len(r.Rows) != 4 {
		t.Fatalf("table3 rows: %d", len(r.Rows))
	}
	if acc := r.Accuracy(); acc < 0.75 {
		t.Fatalf("classification accuracy %.2f:\n%s", acc, r.Table())
	}
	if !strings.Contains(r.Table(), "Table 3") {
		t.Fatal("table3 renderer incomplete")
	}
}

func TestClassifyRule(t *testing.T) {
	sizes := []int{64, 256, 1024, 2048, 4096}
	nominal := 2048
	cases := []struct {
		mpki []float64
		want workload.Category
	}{
		{[]float64{2, 2, 1, 1, 1}, workload.Insensitive},
		{[]float64{40, 30, 20, 12, 6}, workload.Friendly},
		{[]float64{50, 50, 50, 2, 2}, workload.Fitting},
		{[]float64{60, 60, 59, 59, 58}, workload.Thrashing},
	}
	for _, c := range cases {
		if got := Classify(c.mpki, sizes, nominal); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.mpki, got, c.want)
		}
	}
}

func TestUMONRRIPSchemeWiring(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	// The UMON-RRIP scheme must run end to end, with the allocator's
	// per-partition policy choices reaching the controller.
	m := SmallCMP(ScaleUnit)
	m.InstrLimit, m.WarmupInstr = 30_000, 30_000
	sch := VantageDRRIPUMONScheme()
	res := m.RunMix(m.Mixes(4)[1], sch)
	if res.Throughput <= 0 {
		t.Fatal("no throughput")
	}
	if res.Repartitions == 0 {
		t.Fatal("allocator never ran")
	}
}

func TestAssociativityValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	r := RunAssociativity([]string{"Rand/16", "Z4/16", "SA16"}, 2048, 4000, 7)
	if len(r.Arrays) != 3 {
		t.Fatal("shape wrong")
	}
	byName := map[string]int{}
	for i, n := range r.Arrays {
		byName[n] = i
	}
	// The idealized array must match x^R tightly; the zcache close behind;
	// the set-associative array clearly worse (the §3.2 claim).
	if d := r.MaxDev[byName["Rand/16"]]; d > 0.05 {
		t.Fatalf("Rand/16 deviates %v from FA(x)", d)
	}
	if d := r.MaxDev[byName["Z4/16"]]; d > 0.30 {
		t.Fatalf("Z4/16 deviates %v from FA(x)", d)
	}
	if r.MaxDev[byName["SA16"]] < r.MaxDev[byName["Z4/16"]] {
		t.Fatalf("SA16 (%v) should deviate more than Z4/16 (%v)",
			r.MaxDev[byName["SA16"]], r.MaxDev[byName["Z4/16"]])
	}
	if !strings.Contains(r.Table(), "maxdev") {
		t.Fatal("assoc table incomplete")
	}
}

func TestBuildArrayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown design accepted")
		}
	}()
	buildArray("Q7", 1024, 1)
}

func TestBankedVantageScheme(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	m := SmallCMP(ScaleUnit)
	m.InstrLimit, m.WarmupInstr = 30_000, 30_000
	res := m.RunMix(m.Mixes(4)[2], BankedVantageScheme(4))
	if res.Throughput <= 0 {
		t.Fatal("banked Vantage produced no throughput")
	}
}

func TestTransientConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	r := RunTransient(2048, 7)
	if len(r.Schemes) != 3 {
		t.Fatal("shape wrong")
	}
	byName := map[string]int{}
	for i, n := range r.Schemes {
		byName[n] = i
	}
	v := r.Accesses[byName["Vantage-Z4/52"]]
	w := r.Accesses[byName["WayPart-SA16"]]
	if v < 0 {
		t.Fatal("Vantage never converged")
	}
	// The paper's Fig 8 claim: Vantage adapts much faster than
	// way-partitioning (which must wait for the new owner to miss on every
	// set of the reassigned ways).
	if w >= 0 && v > w {
		t.Fatalf("Vantage (%d accesses) slower than way-partitioning (%d)", v, w)
	}
	if !strings.Contains(r.Table(), "transient") {
		t.Fatal("table incomplete")
	}
}

func TestWriteReportSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	dir := t.TempDir()
	// Shrink everything so the full report runs in seconds.
	err := WriteReport(dir, ReportOptions{Scale: ScaleUnit, Mixes: 2,
		Tweak: func(m Machine) Machine {
			m.InstrLimit, m.WarmupInstr = 15_000, 15_000
			return m
		}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/REPORT.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig 1", "Fig 6a", "Fig 7", "Table 3", "Resize transient"} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("report missing %q", want)
		}
	}
	for _, csv := range []string{"fig1.csv", "fig6a.csv", "fig9.csv"} {
		if _, err := os.Stat(dir + "/" + csv); err != nil {
			t.Fatalf("missing %s", csv)
		}
	}
}

// TestRunMixDeterministic: identical machine+mix+scheme runs must produce
// bit-identical results — the reproducibility guarantee the experiment
// harness advertises.
func TestRunMixDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	m := SmallCMP(ScaleUnit)
	m.InstrLimit, m.WarmupInstr = 30_000, 20_000
	for _, sch := range []Scheme{LRUBaseline(), DefaultVantageScheme(), PIPPScheme()} {
		a := m.RunMix(m.Mixes(4)[1], sch)
		b := m.RunMix(m.Mixes(4)[1], sch)
		if a.Throughput != b.Throughput {
			t.Fatalf("%s: runs differ: %v vs %v", sch.Name, a.Throughput, b.Throughput)
		}
		for i := range a.Cores {
			if a.Cores[i] != b.Cores[i] {
				t.Fatalf("%s: core %d stats differ", sch.Name, i)
			}
		}
	}
}

// TestParallelMatchesSequential: every parallel harness must produce
// bit-identical results whether its work units run one at a time
// (GOMAXPROCS=1) or concurrently (GOMAXPROCS=4) — simulations share no
// mutable state, and shared recordings extend safely under concurrency.
// Covers the throughput sweep plus the other mix-fanning experiments:
// RunSelected (Fig 6b), Fig 8 traces, and the Fig 9 sweep.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	m := SmallCMP(ScaleUnit)
	m.InstrLimit, m.WarmupInstr = 20_000, 10_000

	runBoth := func(name string, run func() any) {
		prev := runtime.GOMAXPROCS(1)
		seq := run()
		runtime.GOMAXPROCS(4)
		par := run()
		runtime.GOMAXPROCS(prev)
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("%s: GOMAXPROCS=4 result differs from GOMAXPROCS=1", name)
		}
	}

	runBoth("RunThroughput", func() any {
		return RunThroughput(m, LRUBaseline(), []Scheme{DefaultVantageScheme()}, 6, nil)
	})
	runBoth("RunSelected", func() any {
		return RunSelected(m, LRUBaseline(),
			[]Scheme{DefaultVantageScheme(), WayPartScheme()},
			[]string{"sftn1", "ttnn4", "ffnn3"})
	})
	runBoth("Fig8", func() any {
		return RunFig8(m, "ttnn4", 0)
	})
	runBoth("Fig9", func() any {
		return RunFig9(m, []float64{0.05, 0.25}, 4, nil)
	})
}

func TestClassBreakdown(t *testing.T) {
	r := ThroughputResult{
		MixIDs: []string{"nnnn1", "ssss1", "nfts1"},
		Curves: []SchemeCurve{{
			Scheme: "X",
			PerMix: []float64{1.0, 2.0, 4.0},
		}},
	}
	bd := r.ClassBreakdown("X")
	// has-n covers nnnn1 (1.0) and nfts1 (4.0): gmean 2.0.
	if !closeF(bd['n'], 2.0) {
		t.Fatalf("has-n gmean = %v", bd['n'])
	}
	// has-s covers ssss1 (2.0) and nfts1 (4.0): gmean sqrt(8).
	if !closeF(bd['s'], 2.8284271247) {
		t.Fatalf("has-s gmean = %v", bd['s'])
	}
	if r.ClassBreakdown("missing") != nil {
		t.Fatal("unknown scheme should return nil")
	}
	if !strings.Contains(r.BreakdownTable(), "has-t") {
		t.Fatal("breakdown table incomplete")
	}
}

func closeF(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-6
}
