package exp

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"vantage/internal/analytic"
	"vantage/internal/core"
	"vantage/internal/sim"
	"vantage/internal/stats"
	"vantage/internal/ucp"
)

// Fig9Result is the unmanaged-region sensitivity study (Fig 9): for each u,
// the relative-throughput curve (9a) and the per-mix fraction of evictions
// forced from the managed region (9b), with the analytical worst-case Pev
// marker.
type Fig9Result struct {
	Machine Machine
	U       []float64
	// Throughput[i] is the sorted relative-throughput curve at U[i].
	Throughput []SchemeCurve
	// ForcedFrac[i] is the sorted per-mix forced-eviction fraction at U[i].
	ForcedFrac [][]float64
	// PevWorstCase[i] is the analytical worst case (1-u)^R.
	PevWorstCase []float64
}

// RunFig9 sweeps the unmanaged-region size over the machine's mixes.
func RunFig9(m Machine, us []float64, limit int, progress func(done, total int)) Fig9Result {
	if len(us) == 0 {
		us = []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30}
	}
	mixes := m.Mixes(limit)
	base := LRUBaseline()
	baseThr := make([]float64, len(mixes))
	total := len(mixes) * (1 + len(us))
	var done atomic.Int64
	var progMu sync.Mutex
	tick := func() {
		d := int(done.Add(1))
		if progress != nil {
			progMu.Lock()
			progress(d, total)
			progMu.Unlock()
		}
	}
	forEachMix(len(mixes), func(i int) {
		baseThr[i] = m.RunMix(mixes[i], base).Throughput
		tick()
	})
	out := Fig9Result{Machine: m, U: us}
	const r = 52 // Z4/52
	for _, u := range us {
		v := DefaultVantage()
		v.UnmanagedFrac = u
		sch := VantageScheme("Z4/52", v, core.ModeSetpoint)
		sweepMixes := m.Mixes(limit) // fresh app instances per sweep point
		curve := SchemeCurve{Scheme: fmt.Sprintf("u=%.0f%%", 100*u), PerMix: make([]float64, len(mixes))}
		forced := make([]float64, len(mixes))
		forEachMix(len(sweepMixes), func(i int) {
			l2 := sch.Build(m, m.Seed^0xf19)
			vc := l2.(*core.Controller)
			alloc := ucp.NewPolicy(m.Cores, m.BaselineWays, m.L2Lines, sch.Granularity, m.Seed^0xa110c)
			res := sim.Run(sim.Config{
				Apps:               sweepMixes[i].Apps,
				L2:                 l2,
				L1Lines:            m.L1Lines,
				L1Ways:             m.L1Ways,
				InstrLimit:         m.InstrLimit,
				WarmupInstr:        m.WarmupInstr,
				Alloc:              alloc,
				RepartitionCycles:  m.RepartitionCycles,
				PartitionableLines: sch.PartitionableLines(m.L2Lines),
			})
			curve.PerMix[i] = res.Throughput / baseThr[i]
			cnt := vc.Counters()
			if cnt.Evictions > 0 {
				forced[i] = float64(cnt.ForcedManagedEvictions) / float64(cnt.Evictions)
			}
			tick()
		})
		curve.Sorted = append([]float64(nil), curve.PerMix...)
		sort.Float64s(curve.Sorted)
		curve.Summary = stats.Summarize(curve.PerMix)
		sort.Float64s(forced)
		out.Throughput = append(out.Throughput, curve)
		out.ForcedFrac = append(out.ForcedFrac, forced)
		out.PevWorstCase = append(out.PevWorstCase, analytic.ForcedEvictionProb(u, r))
	}
	return out
}

// Table renders both panels.
func (r Fig9Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 9: sensitivity to unmanaged region size (%s, %d mixes)\n", r.Machine.Name, len(r.ForcedFrac[0]))
	b.WriteString("u       gmean-thr  improved   median-forced  p90-forced  worst-case-Pev\n")
	for i, u := range r.U {
		ff := r.ForcedFrac[i]
		med, p90 := 0.0, 0.0
		if n := len(ff); n > 0 {
			med, p90 = ff[n/2], ff[n*9/10]
		}
		fmt.Fprintf(&b, "%-8s%9.3f%9.0f%%%15.2e%12.2e%16.2e\n",
			fmt.Sprintf("%.0f%%", 100*u), r.Throughput[i].Summary.GeoMean,
			100*r.Throughput[i].Summary.FracAboveOne, med, p90, r.PevWorstCase[i])
	}
	return b.String()
}

// CSV renders the per-mix data.
func (r Fig9Result) CSV() string {
	var b strings.Builder
	b.WriteString("u,mix_rank,rel_throughput,forced_frac,pev_worst\n")
	for i, u := range r.U {
		for k := range r.Throughput[i].Sorted {
			fmt.Fprintf(&b, "%.2f,%d,%.5f,%.3e,%.3e\n",
				u, k, r.Throughput[i].Sorted[k], r.ForcedFrac[i][k], r.PevWorstCase[i])
		}
	}
	return b.String()
}
