package exp

import (
	"fmt"
	"strings"

	"vantage/internal/cache"
	"vantage/internal/core"
	"vantage/internal/ctrl"
	"vantage/internal/hash"
	"vantage/internal/part"
)

// TransientResult quantifies the §6.1 / Fig 8 claim that Vantage adapts to
// repartitioning much faster than way-partitioning: way-partitioning only
// reclaims a reassigned way as the new owner misses on each of its sets,
// while Vantage demotes the downsized partition's surplus globally on every
// replacement.
//
// The experiment warms two partitions to a 75/25 split, flips the targets
// to 25/75, and counts the accesses until each scheme's partition sizes are
// within tolerance of the new targets.
type TransientResult struct {
	CacheLines int
	// AccessesToConverge per scheme; -1 means it never converged within
	// the access budget.
	Schemes   []string
	Accesses  []int
	Tolerance float64
}

// RunTransient measures resize convergence on a cache with lines lines.
func RunTransient(lines int, seed uint64) TransientResult {
	out := TransientResult{CacheLines: lines, Tolerance: 0.10}

	type build struct {
		name string
		mk   func() ctrl.Controller
	}
	builds := []build{
		{"Vantage-Z4/52", func() ctrl.Controller {
			arr := cache.NewZCache(lines, 4, 52, seed)
			return core.New(arr, core.Config{
				Partitions: 2, UnmanagedFrac: 0.05, AMax: 0.5, Slack: 0.1, Seed: seed,
			})
		}},
		{"WayPart-SA16", func() ctrl.Controller {
			arr := cache.NewSetAssoc(lines, 16, true, seed)
			return part.NewWayPartition(arr, 2)
		}},
		{"PIPP-SA16", func() ctrl.Controller {
			arr := cache.NewSetAssoc(lines, 16, true, seed)
			return part.NewPIPP(arr, 2, seed)
		}},
	}

	partitionable := lines * 95 / 100
	big, small := partitionable*3/4, partitionable/4
	for _, b := range builds {
		c := b.mk()
		c.SetTargets([]int{big, small})
		rng := hash.NewRand(seed ^ 0x7a5)
		// Both partitions stream over working sets larger than any target,
		// so they exert constant pressure and fill whatever they are given.
		access := func() {
			c.Access(1<<40|uint64(rng.Intn(lines*2)), 0)
			c.Access(2<<40|uint64(rng.Intn(lines*2)), 1)
		}
		for i := 0; i < lines*20; i++ {
			access()
		}
		// Flip the allocation.
		c.SetTargets([]int{small, big})
		converged := -1
		budget := lines * 100
		for i := 0; i < budget; i++ {
			access()
			if i%64 == 0 {
				d0 := float64(c.Size(0)-small) / float64(small)
				d1 := float64(big-c.Size(1)) / float64(big)
				if d0 < out.Tolerance && d1 < out.Tolerance {
					converged = 2 * i // two accesses per step
					break
				}
			}
		}
		out.Schemes = append(out.Schemes, b.name)
		out.Accesses = append(out.Accesses, converged)
	}
	return out
}

// Table renders the convergence comparison.
func (r TransientResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Repartitioning transient: accesses to converge after a 75/25 -> 25/75 flip (%d lines, +/-%.0f%%)\n",
		r.CacheLines, 100*r.Tolerance)
	for i, name := range r.Schemes {
		if r.Accesses[i] < 0 {
			fmt.Fprintf(&b, "%-16s never converged\n", name)
		} else {
			fmt.Fprintf(&b, "%-16s %8d accesses (%.1fx cache size)\n",
				name, r.Accesses[i], float64(r.Accesses[i])/float64(r.CacheLines))
		}
	}
	return b.String()
}
