//go:build race

package exp

// raceEnabled reports whether the race detector is compiled in; the
// statistical-equivalence suite skips under it (5-10x slowdown on a purely
// numerical contract that the race-free CI step enforces).
const raceEnabled = true
