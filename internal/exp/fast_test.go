package exp

import (
	"os"
	"strconv"
	"testing"

	"vantage/internal/stats"
)

// equivEnvInt reads a positive integer override from the environment, for
// the CI smoke (smaller budgets) or deeper local sweeps (larger).
func equivEnvInt(t *testing.T, name string, def int) int {
	s := os.Getenv(name)
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 2 {
		t.Fatalf("bad %s=%q", name, s)
	}
	return n
}

// TestFastTierEquivalence is the fast tier's validation contract: on the
// Fig 7 configuration, each scheme's geometric-mean throughput under the
// fast generators must sit within ±0.5% of the exact tier's, and the
// per-mix throughput distributions must agree under a two-sample KS test at
// the 1% level. The tiers share mix composition and machine geometry and
// differ only in reference-stream draw sequences (see workload/fast.go), so
// a violation means the fast samplers changed the *distributions*, not just
// the draws.
func TestFastTierEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs Fig 7 twice")
	}
	if raceEnabled {
		t.Skip("numerical contract; the race-free CI step enforces it")
	}
	// Budget calibration (measured on this configuration): the measurement
	// window must be long enough that per-mix seed noise — two different
	// draw sequences of the *same* distribution still differ by
	// O(1/sqrt(refs)) — sits inside the tolerance; warmup dominates the run
	// cost, so a longer window is nearly free (25k instructions measured
	// 0.5-0.9% pure-noise deltas; 150k brings the floor to ~0.2%). The mix
	// budget must also absorb allocation-decision instability: on
	// fitting-heavy mixes the coarse schemes (WayPart, PIPP) flip whole-way
	// allocations at working-set cliffs under tiny stream perturbations,
	// moving single mixes by ±5% in either direction; those flips cancel
	// across mixes (6 mixes left WayPart at 0.72%, 12 brings all schemes
	// under 0.29% with the tolerance at 0.5%).
	m := LargeCMP(ScaleUnit)
	m.InstrLimit = uint64(equivEnvInt(t, "VANTAGE_EQUIV_INSTR", 150_000))
	mixes := equivEnvInt(t, "VANTAGE_EQUIV_MIXES", 12)

	exact := Fig7(m, mixes, nil)
	fm := m
	fm.FastTier = true
	fast := Fig7(fm, mixes, nil)

	if len(fast.Curves) != len(exact.Curves) {
		t.Fatalf("curve count differs: %d vs %d", len(exact.Curves), len(fast.Curves))
	}
	// Baseline ΣIPC sanity first: scheme curves are ratios against it, so a
	// large baseline shift would silently rescale every curve. Absolute
	// ΣIPC carries the full stream-seed noise (nothing cancels, unlike the
	// ratios the ±0.5% contract governs), so its bound is looser.
	base := stats.CompareEquivalence("baseline-ΣIPC", exact.BaselineThroughput, fast.BaselineThroughput)
	t.Log(base)
	if err := base.Check(0.02, stats.KSCritical(0.01, base.NA, base.NB)); err != nil {
		t.Error(err)
	}
	for i, c := range exact.Curves {
		fc := fast.Curves[i]
		if fc.Scheme != c.Scheme {
			t.Fatalf("scheme order differs: %q vs %q", c.Scheme, fc.Scheme)
		}
		e := stats.CompareEquivalence(c.Scheme, c.PerMix, fc.PerMix)
		t.Log(e)
		if err := e.Check(0.005, stats.KSCritical(0.01, e.NA, e.NB)); err != nil {
			t.Error(err)
			for j := range c.PerMix {
				t.Logf("  %-8s exact=%.5f fast=%.5f (%+.2f%%)",
					exact.MixIDs[j], c.PerMix[j], fc.PerMix[j], 100*(fc.PerMix[j]/c.PerMix[j]-1))
			}
		}
	}
}

// TestFastTierMixStructure verifies the tier switch leaves mix composition
// untouched: same apps, names, and categories — only the samplers differ.
func TestFastTierMixStructure(t *testing.T) {
	m := LargeCMP(ScaleUnit)
	fm := m
	fm.FastTier = true
	a, err := m.Mix("nfts1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := fm.Mix("nfts1")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Apps) != len(b.Apps) {
		t.Fatalf("app counts differ: %d vs %d", len(a.Apps), len(b.Apps))
	}
	for i := range a.Apps {
		if a.Apps[i].Name() != b.Apps[i].Name() {
			t.Fatalf("app %d name differs: %q vs %q", i, a.Apps[i].Name(), b.Apps[i].Name())
		}
		if a.Apps[i].Category() != b.Apps[i].Category() {
			t.Fatalf("app %d category differs", i)
		}
	}
}
