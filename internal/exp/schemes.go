package exp

import (
	"fmt"

	"vantage/internal/cache"
	"vantage/internal/core"
	"vantage/internal/ctrl"
	"vantage/internal/hash"
	"vantage/internal/part"
	"vantage/internal/repl"
	"vantage/internal/sim"
	"vantage/internal/ucp"
)

// Scheme describes a cache configuration under test: an array design plus a
// partitioning scheme (or an unpartitioned baseline) plus how UCP drives it.
type Scheme struct {
	// Name as shown in the paper's legends, e.g. "Vantage-Z4/52".
	Name string
	// Build constructs the L2 controller for a machine.
	Build func(m Machine, seed uint64) ctrl.Controller
	// UsesUCP reports whether the scheme takes UCP allocations.
	UsesUCP bool
	// Granularity is UCP's allocation granularity for this scheme.
	Granularity ucp.Granularity
	// PartitionableLines maps total L2 lines to the capacity UCP may
	// allocate (Vantage partitions only the managed region).
	PartitionableLines func(lines int) int
	// BuildAllocator, if set, overrides the default UCP allocator (used by
	// the UMON-RRIP Vantage-DRRIP configuration).
	BuildAllocator func(m Machine, seed uint64) sim.Allocator
}

// VantageDefaults are the paper's §6.1 evaluation settings: u = 5%,
// Amax = 0.5, slack = 10% on a Z4/52 zcache.
type VantageDefaults struct {
	UnmanagedFrac float64
	AMax          float64
	Slack         float64
}

// DefaultVantage returns the §6.1 configuration.
func DefaultVantage() VantageDefaults {
	return VantageDefaults{UnmanagedFrac: 0.05, AMax: 0.5, Slack: 0.1}
}

// LRUBaseline is the unpartitioned hashed set-associative LRU cache all
// figures normalize against (16-way at 4 cores, 64-way at 32 cores).
func LRUBaseline() Scheme {
	return Scheme{
		Name: "LRU-SA",
		Build: func(m Machine, seed uint64) ctrl.Controller {
			arr := cache.NewSetAssoc(m.L2Lines, m.BaselineWays, true, seed)
			return ctrl.NewUnpartitioned(arr, repl.NewLRUTimestamp(m.L2Lines), m.Cores)
		},
	}
}

// LRUZCache is the unpartitioned Z4/52 zcache (Fig 6b's extra bar, isolating
// the zcache's contribution from Vantage's).
func LRUZCache() Scheme {
	return Scheme{
		Name: "LRU-Z4/52",
		Build: func(m Machine, seed uint64) ctrl.Controller {
			arr := cache.NewZCache(m.L2Lines, 4, 52, seed)
			return ctrl.NewUnpartitioned(arr, repl.NewLRUTimestamp(m.L2Lines), m.Cores)
		},
	}
}

// RRIPBaseline returns an unpartitioned RRIP-family baseline on a Z4/52
// zcache (Fig 11): variant is "SRRIP", "DRRIP", or "TA-DRRIP".
func RRIPBaseline(variant string) Scheme {
	return Scheme{
		Name: variant + "-Z4/52",
		Build: func(m Machine, seed uint64) ctrl.Controller {
			arr := cache.NewZCache(m.L2Lines, 4, 52, seed)
			var pol repl.Policy
			switch variant {
			case "SRRIP":
				pol = repl.NewSRRIP(m.L2Lines)
			case "DRRIP":
				pol = repl.NewDRRIP(m.L2Lines, seed^0xd)
			case "TA-DRRIP":
				pol = repl.NewTADRRIP(m.L2Lines, m.Cores, seed^0x7a)
			default:
				panic(fmt.Sprintf("exp: unknown RRIP variant %q", variant))
			}
			return ctrl.NewUnpartitioned(arr, pol, m.Cores)
		},
	}
}

// WayPartScheme is way-partitioning on the machine's hashed set-associative
// baseline array, driven by UCP at way granularity.
func WayPartScheme() Scheme {
	return Scheme{
		Name: "WayPart-SA",
		Build: func(m Machine, seed uint64) ctrl.Controller {
			arr := cache.NewSetAssoc(m.L2Lines, m.BaselineWays, true, seed)
			return part.NewWayPartition(arr, m.Cores)
		},
		UsesUCP:            true,
		Granularity:        ucp.GranWays,
		PartitionableLines: func(lines int) int { return lines },
	}
}

// PIPPScheme is PIPP on the baseline array, driven by UCP at way
// granularity.
func PIPPScheme() Scheme {
	return Scheme{
		Name: "PIPP-SA",
		Build: func(m Machine, seed uint64) ctrl.Controller {
			arr := cache.NewSetAssoc(m.L2Lines, m.BaselineWays, true, seed)
			return part.NewPIPP(arr, m.Cores, seed^0x9a99)
		},
		UsesUCP:            true,
		Granularity:        ucp.GranWays,
		PartitionableLines: func(lines int) int { return lines },
	}
}

// VantageScheme is the paper's default Vantage configuration on a given
// array design. arrayKind is one of "Z4/52", "Z4/16", "SA16", "SA64",
// "Rand/52" (the §6.2 idealized validation array).
func VantageScheme(arrayKind string, v VantageDefaults, mode core.Mode) Scheme {
	name := mode.String() + "-" + arrayKind
	return Scheme{
		Name: name,
		Build: func(m Machine, seed uint64) ctrl.Controller {
			var arr cache.Array
			switch arrayKind {
			case "Z4/52":
				arr = cache.NewZCache(m.L2Lines, 4, 52, seed)
			case "Z4/16":
				arr = cache.NewZCache(m.L2Lines, 4, 16, seed)
			case "SA16":
				arr = cache.NewSetAssoc(m.L2Lines, 16, true, seed)
			case "SA64":
				arr = cache.NewSetAssoc(m.L2Lines, 64, true, seed)
			case "Rand/52":
				arr = cache.NewRandomCands(m.L2Lines, 52, seed)
			default:
				panic(fmt.Sprintf("exp: unknown array kind %q", arrayKind))
			}
			return core.New(arr, core.Config{
				Partitions:    m.Cores,
				UnmanagedFrac: v.UnmanagedFrac,
				AMax:          v.AMax,
				Slack:         v.Slack,
				Mode:          mode,
				Seed:          seed,
			})
		},
		UsesUCP:     true,
		Granularity: ucp.GranLines,
		PartitionableLines: func(lines int) int {
			return int(float64(lines) * (1 - v.UnmanagedFrac))
		},
	}
}

// DefaultVantageScheme is Vantage-Z4/52 with the §6.1 settings.
func DefaultVantageScheme() Scheme {
	return VantageScheme("Z4/52", DefaultVantage(), core.ModeSetpoint)
}

// BankedVantageScheme is the paper's physical organization: the L2 split
// into 4 address-interleaved banks, each with its own Vantage controller
// (Table 2 / Fig 4); global UCP targets are divided evenly across banks.
func BankedVantageScheme(banks int) Scheme {
	v := DefaultVantage()
	return Scheme{
		Name: fmt.Sprintf("Vantage-Z4/52x%d", banks),
		Build: func(m Machine, seed uint64) ctrl.Controller {
			per := make([]ctrl.Controller, banks)
			for i := range per {
				arr := cache.NewZCache(m.L2Lines/banks, 4, 52, hash.Mix64(seed+uint64(i)))
				per[i] = core.New(arr, core.Config{
					Partitions:    m.Cores,
					UnmanagedFrac: v.UnmanagedFrac,
					AMax:          v.AMax,
					Slack:         v.Slack,
					Seed:          seed,
				})
			}
			return ctrl.NewBanked(per, seed)
		},
		UsesUCP:     true,
		Granularity: ucp.GranLines,
		PartitionableLines: func(lines int) int {
			return int(float64(lines) * (1 - v.UnmanagedFrac))
		},
	}
}

// VantageDRRIPUMONScheme is the paper-faithful Vantage-DRRIP configuration:
// the controller runs in ModeRRIP and a UMON-RRIP allocation policy both
// sizes the partitions and picks each partition's SRRIP/BRRIP insertion
// policy per interval (§6.2).
func VantageDRRIPUMONScheme() Scheme {
	sch := VantageScheme("Z4/52", DefaultVantage(), core.ModeRRIP)
	sch.Name = "Vantage-DRRIP-UMON-Z4/52"
	sch.BuildAllocator = func(m Machine, seed uint64) sim.Allocator {
		return ucp.NewPolicyRRIP(m.Cores, m.BaselineWays, m.L2Lines, seed)
	}
	return sch
}
